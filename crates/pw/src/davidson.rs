//! Blocked Davidson eigensolver.
//!
//! A third solver variant alongside the paper-faithful all-band CG and
//! band-by-band CG: the standard blocked Davidson scheme used by many
//! production planewave codes (VASP's default family). Expands the
//! subspace with preconditioned residuals, Rayleigh–Ritzes in the doubled
//! space, and restarts. Used as a robustness cross-check of the CG
//! solvers and as an extension point beyond the paper.

use crate::solver::{SolveStats, SolverOptions};
use crate::{Hamiltonian, PwBasis};
use ls3df_math::gemm::{self, Op};
use ls3df_math::vec_ops::{dscal, nrm2};
use ls3df_math::{c64, eigh_fast as eigh, Matrix};

/// Teter–Payne–Allan-style diagonal preconditioner (same as the CG path).
fn precondition_row(basis: &PwBasis, row: &mut [c64], e_kin: f64) {
    let ek = e_kin.max(1e-6);
    for (v, &g2) in row.iter_mut().zip(basis.g2()) {
        let x = 0.5 * g2 / ek;
        let x2 = x * x;
        let x3 = x2 * x;
        let num = 27.0 + 18.0 * x + 12.0 * x2 + 8.0 * x3;
        *v = v.scale(num / (num + 16.0 * x3 * x));
    }
}

/// Stacks two band blocks vertically.
fn vstack(a: &Matrix<c64>, b: &Matrix<c64>) -> Matrix<c64> {
    assert_eq!(a.cols(), b.cols());
    let mut out = Matrix::zeros(a.rows() + b.rows(), a.cols());
    out.as_mut_slice()[..a.rows() * a.cols()].copy_from_slice(a.as_slice());
    out.as_mut_slice()[a.rows() * a.cols()..].copy_from_slice(b.as_slice());
    out
}

/// Blocked Davidson: solves for the lowest `psi.rows()` eigenpairs of `h`.
///
/// Each iteration doubles the subspace with preconditioned residuals,
/// orthonormalizes, solves the `2n × 2n` Rayleigh–Ritz problem and keeps
/// the lowest `n` Ritz vectors.
pub fn solve_davidson(
    h: &Hamiltonian<'_>,
    psi: &mut Matrix<c64>,
    opts: &SolverOptions,
) -> SolveStats {
    let nb = psi.rows();
    let npw = psi.cols();
    assert_eq!(npw, h.basis().len());
    ls3df_math::ortho::cholesky_orthonormalize(psi, 1.0).expect("independent start");
    let mut hpsi = h.apply_block(psi);
    let mut eigenvalues = vec![0.0_f64; nb];
    let mut residual = f64::INFINITY;
    let mut iterations = 0;

    for iter in 0..opts.max_iter {
        iterations = iter + 1;
        // Ritz values in the current block.
        let m = Hamiltonian::subspace_matrix(psi, &hpsi);
        let eig = eigh(&m);
        eigenvalues.copy_from_slice(&eig.values);
        let rotate = |block: &Matrix<c64>| {
            let mut out = Matrix::zeros(nb, npw);
            gemm::gemm(
                c64::ONE,
                &eig.vectors,
                Op::Trans,
                block,
                Op::None,
                c64::ZERO,
                &mut out,
            );
            out
        };
        *psi = rotate(psi);
        hpsi = rotate(&hpsi);

        // Residual block.
        let mut resid = hpsi.clone();
        for b in 0..nb {
            let eps = eigenvalues[b];
            let (r, p) = (resid.row_mut(b), psi.row(b));
            for (x, &y) in r.iter_mut().zip(p) {
                *x -= y.scale(eps);
            }
        }
        residual = (0..nb).map(|b| nrm2(resid.row(b))).fold(0.0, f64::max);
        if residual <= opts.tol {
            return SolveStats {
                eigenvalues,
                residual,
                iterations,
                converged: true,
            };
        }

        // Preconditioned expansion directions.
        let mut expand = resid;
        for b in 0..nb {
            let ekin = h.kinetic_expectation(psi.row(b));
            precondition_row(h.basis(), expand.row_mut(b), ekin);
            let n = nrm2(expand.row(b));
            if n > 1e-300 {
                dscal(1.0 / n, expand.row_mut(b));
            }
        }

        // Doubled subspace [ψ; t], orthonormalized as one block.
        let mut space = vstack(psi, &expand);
        if ls3df_math::ortho::cholesky_orthonormalize(&mut space, 1.0).is_err() {
            // Expansion collapsed onto the current space: converged to
            // working precision.
            break;
        }
        let h_space = h.apply_block(&space);
        let m2 = Hamiltonian::subspace_matrix(&space, &h_space);
        let eig2 = eigh(&m2);
        // Keep the lowest nb Ritz vectors of the doubled space.
        let mut coeff = Matrix::zeros(nb, 2 * nb);
        for k in 0..nb {
            for i in 0..2 * nb {
                coeff[(k, i)] = eig2.vectors[(i, k)];
            }
        }
        let mut new_psi = Matrix::zeros(nb, npw);
        gemm::gemm(
            c64::ONE,
            &coeff,
            Op::None,
            &space,
            Op::None,
            c64::ZERO,
            &mut new_psi,
        );
        let mut new_hpsi = Matrix::zeros(nb, npw);
        gemm::gemm(
            c64::ONE,
            &coeff,
            Op::None,
            &h_space,
            Op::None,
            c64::ZERO,
            &mut new_hpsi,
        );
        *psi = new_psi;
        hpsi = new_hpsi;
        eigenvalues.copy_from_slice(&eig2.values[..nb]);
    }
    SolveStats {
        eigenvalues,
        residual,
        iterations,
        converged: residual <= opts.tol,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::NonlocalPotential;
    use ls3df_grid::{Grid3, RealField};

    #[test]
    fn davidson_free_electron_spectrum() {
        let grid = Grid3::cubic(10, 9.0);
        let basis = PwBasis::new(grid.clone(), 1.2);
        let v = RealField::zeros(grid);
        let nl = NonlocalPotential::none(&basis);
        let h = Hamiltonian::new(&basis, v, &nl);
        let mut exact: Vec<f64> = basis.g2().iter().map(|&g| 0.5 * g).collect();
        exact.sort_by(|a, b| a.partial_cmp(b).unwrap());

        let mut psi = crate::scf::random_start(5, &basis, 3);
        let stats = solve_davidson(
            &h,
            &mut psi,
            &SolverOptions {
                max_iter: 60,
                tol: 1e-8,
                ..Default::default()
            },
        );
        assert!(stats.converged, "residual {}", stats.residual);
        for b in 0..5 {
            assert!(
                (stats.eigenvalues[b] - exact[b]).abs() < 1e-6,
                "band {b}: {} vs {}",
                stats.eigenvalues[b],
                exact[b]
            );
        }
    }

    #[test]
    fn davidson_agrees_with_cg_on_potential_problem() {
        let grid = Grid3::cubic(10, 8.0);
        let basis = PwBasis::new(grid.clone(), 1.4);
        let v = RealField::from_fn(grid, |r| {
            let d2 = (r[0] - 4.0).powi(2) + (r[1] - 4.0).powi(2) + (r[2] - 4.0).powi(2);
            -0.9 * (-d2 / 5.0).exp()
        });
        let nl = NonlocalPotential::new(
            &basis,
            &[[4.0, 4.0, 4.0]],
            |_, q| (-q * q / 2.0).exp(),
            &[0.6],
        );
        let h = Hamiltonian::new(&basis, v, &nl);
        let opts = SolverOptions {
            max_iter: 100,
            tol: 1e-7,
            ..Default::default()
        };

        let mut psi_d = crate::scf::random_start(4, &basis, 7);
        let d = solve_davidson(&h, &mut psi_d, &opts);
        let mut psi_c = crate::scf::random_start(4, &basis, 8);
        let c = crate::solve_all_band(&h, &mut psi_c, &opts);
        assert!(d.converged && c.converged);
        for b in 0..4 {
            assert!(
                (d.eigenvalues[b] - c.eigenvalues[b]).abs() < 1e-5,
                "band {b}: Davidson {} vs CG {}",
                d.eigenvalues[b],
                c.eigenvalues[b]
            );
        }
    }

    #[test]
    fn davidson_converges_faster_per_iteration_than_cg() {
        // Davidson's doubled subspace usually needs fewer outer iterations
        // than single-vector-update CG for the same tolerance.
        let grid = Grid3::cubic(10, 8.0);
        let basis = PwBasis::new(grid.clone(), 1.2);
        let v = RealField::from_fn(grid, |r| {
            0.4 * (2.0 * std::f64::consts::PI * r[0] / 8.0).cos()
        });
        let nl = NonlocalPotential::none(&basis);
        let h = Hamiltonian::new(&basis, v, &nl);
        let opts = SolverOptions {
            max_iter: 200,
            tol: 1e-7,
            ..Default::default()
        };
        let mut psi_d = crate::scf::random_start(4, &basis, 4);
        let d = solve_davidson(&h, &mut psi_d, &opts);
        let mut psi_c = crate::scf::random_start(4, &basis, 4);
        let c = crate::solve_all_band(&h, &mut psi_c, &opts);
        assert!(d.converged && c.converged);
        assert!(
            d.iterations <= c.iterations,
            "Davidson {} iters vs CG {}",
            d.iterations,
            c.iterations
        );
    }
}
