//! Ewald summation for the ion–ion electrostatic energy of point charges
//! in a periodic orthorhombic cell with a neutralizing background.
//!
//! Needed by the total-energy comparisons between LS3DF and the direct
//! DFT solver (paper §V: "the total energy differed by only a few meV per
//! atom").

use ls3df_pseudo::erf;
use std::f64::consts::PI;

fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Computes the Ewald energy (Hartree) of point charges `q` at Cartesian
/// positions `pos` (Bohr) in a periodic box `lengths`, including the
/// neutralizing-background correction for non-neutral cells.
pub fn ewald_energy(pos: &[[f64; 3]], q: &[f64], lengths: [f64; 3]) -> f64 {
    assert_eq!(pos.len(), q.len(), "ewald: charge count mismatch");
    let n = pos.len();
    if n == 0 {
        return 0.0;
    }
    let volume = lengths[0] * lengths[1] * lengths[2];

    // Split parameter: balance real and reciprocal workloads.
    let eta = 2.6
        / lengths
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            .max(1e-10)
        * (n as f64).powf(1.0 / 6.0).max(1.0);
    let eta = eta.max(4.0 / lengths.iter().cloned().fold(f64::INFINITY, f64::min));

    // Real-space sum: all images with erfc contribution above threshold.
    let r_cut = 7.0 / eta;
    let images: [i64; 3] = std::array::from_fn(|k| (r_cut / lengths[k]).ceil() as i64);
    let mut e_real = 0.0;
    for i in 0..n {
        for j in 0..n {
            for lx in -images[0]..=images[0] {
                for ly in -images[1]..=images[1] {
                    for lz in -images[2]..=images[2] {
                        if i == j && lx == 0 && ly == 0 && lz == 0 {
                            continue;
                        }
                        let dx = pos[j][0] - pos[i][0] + lx as f64 * lengths[0];
                        let dy = pos[j][1] - pos[i][1] + ly as f64 * lengths[1];
                        let dz = pos[j][2] - pos[i][2] + lz as f64 * lengths[2];
                        let r = (dx * dx + dy * dy + dz * dz).sqrt();
                        if r > r_cut {
                            continue;
                        }
                        e_real += 0.5 * q[i] * q[j] * erfc(eta * r) / r;
                    }
                }
            }
        }
    }

    // Reciprocal-space sum.
    let g_cut = 2.0 * eta * (-(1e-12_f64).ln()).sqrt();
    let g_n: [i64; 3] = std::array::from_fn(|k| (g_cut * lengths[k] / (2.0 * PI)).ceil() as i64);
    let mut e_recip = 0.0;
    for mx in -g_n[0]..=g_n[0] {
        for my in -g_n[1]..=g_n[1] {
            for mz in -g_n[2]..=g_n[2] {
                if mx == 0 && my == 0 && mz == 0 {
                    continue;
                }
                let g = [
                    2.0 * PI * mx as f64 / lengths[0],
                    2.0 * PI * my as f64 / lengths[1],
                    2.0 * PI * mz as f64 / lengths[2],
                ];
                let g2 = g[0] * g[0] + g[1] * g[1] + g[2] * g[2];
                if g2 > g_cut * g_cut {
                    continue;
                }
                // |S(G)|² with S(G) = Σ q_i e^{iG·r_i}.
                let (mut s_re, mut s_im) = (0.0, 0.0);
                for (r, &qi) in pos.iter().zip(q) {
                    let phase = g[0] * r[0] + g[1] * r[1] + g[2] * r[2];
                    s_re += qi * phase.cos();
                    s_im += qi * phase.sin();
                }
                let s2 = s_re * s_re + s_im * s_im;
                e_recip += 2.0 * PI / (volume * g2) * s2 * (-g2 / (4.0 * eta * eta)).exp();
            }
        }
    }

    // Self-interaction and neutralizing-background corrections.
    let q_tot: f64 = q.iter().sum();
    let q2_sum: f64 = q.iter().map(|v| v * v).sum();
    let e_self = -eta / PI.sqrt() * q2_sum;
    let e_background = -PI / (2.0 * eta * eta * volume) * q_tot * q_tot;

    e_real + e_recip + e_self + e_background
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NaCl (rock salt) Madelung constant: 1.747565.
    #[test]
    fn nacl_madelung() {
        let a = 2.0; // conventional cubic cell
        let mut pos = Vec::new();
        let mut q = Vec::new();
        let fcc = [
            [0.0, 0.0, 0.0],
            [0.0, 0.5, 0.5],
            [0.5, 0.0, 0.5],
            [0.5, 0.5, 0.0],
        ];
        for f in fcc {
            pos.push([f[0] * a, f[1] * a, f[2] * a]);
            q.push(1.0);
            pos.push([(f[0] + 0.5) * a, f[1] * a, f[2] * a]);
            q.push(-1.0);
        }
        let e = ewald_energy(&pos, &q, [a, a, a]);
        // 4 ion pairs, nearest-neighbor distance a/2.
        let madelung = -e * (a / 2.0) / 4.0;
        assert!(
            (madelung - 1.747565).abs() < 1e-4,
            "NaCl Madelung constant = {madelung}"
        );
    }

    /// Zinc-blende Madelung constant: 1.63806 (relative to the
    /// nearest-neighbor distance √3·a/4).
    #[test]
    fn zincblende_madelung() {
        let a = 3.0;
        let mut pos = Vec::new();
        let mut q = Vec::new();
        let fcc = [
            [0.0, 0.0, 0.0],
            [0.0, 0.5, 0.5],
            [0.5, 0.0, 0.5],
            [0.5, 0.5, 0.0],
        ];
        for f in fcc {
            pos.push([f[0] * a, f[1] * a, f[2] * a]);
            q.push(1.0);
            pos.push([(f[0] + 0.25) * a, (f[1] + 0.25) * a, (f[2] + 0.25) * a]);
            q.push(-1.0);
        }
        let e = ewald_energy(&pos, &q, [a, a, a]);
        let d_nn = 3.0_f64.sqrt() / 4.0 * a;
        let madelung = -e * d_nn / 4.0;
        assert!(
            (madelung - 1.63806).abs() < 1e-3,
            "zinc-blende Madelung constant = {madelung}"
        );
    }

    #[test]
    fn energy_independent_of_rigid_translation() {
        let pos = [[0.2, 0.3, 0.4], [1.1, 0.9, 1.4]];
        let q = [2.0, -2.0];
        let l = [3.0, 3.0, 3.0];
        let e1 = ewald_energy(&pos, &q, l);
        let shifted: Vec<[f64; 3]> = pos
            .iter()
            .map(|r| [r[0] + 0.7, r[1] - 0.2, r[2] + 1.9])
            .collect();
        let e2 = ewald_energy(&shifted, &q, l);
        assert!((e1 - e2).abs() < 1e-8, "{e1} vs {e2}");
    }

    #[test]
    fn scales_with_charge_squared() {
        let pos = [[0.0, 0.0, 0.0], [1.5, 1.5, 1.5]];
        let l = [3.0, 3.0, 3.0];
        let e1 = ewald_energy(&pos, &[1.0, -1.0], l);
        let e2 = ewald_energy(&pos, &[2.0, -2.0], l);
        assert!((e2 - 4.0 * e1).abs() < 1e-8);
    }

    #[test]
    fn empty_system_is_zero() {
        assert_eq!(ewald_energy(&[], &[], [1.0, 1.0, 1.0]), 0.0);
    }

    #[test]
    fn wigner_crystal_single_charge() {
        // One charge in a neutralizing background: E = −q²·ξ/L with
        // ξ ≈ 1.418649 (simple-cubic Wigner/Madelung constant).
        let e = ewald_energy(&[[0.0, 0.0, 0.0]], &[1.0], [2.0, 2.0, 2.0]);
        let xi = -e * 2.0;
        assert!((xi - 1.418649).abs() < 1e-4, "ξ = {xi}");
    }
}
