//! Assembly of the ionic local potential, initial density guesses, and the
//! self-consistent effective potential `V_eff = V_ion + V_H[ρ] + V_xc[ρ]`.

use crate::{hartree, xc, PwBasis};
use ls3df_fft::Fft3r;
use ls3df_grid::RealField;
use ls3df_math::{c64, kernel_policy, KernelPolicy};
use ls3df_pseudo::LocalPotential;

/// One atom as the planewave engine sees it: position + pseudopotential
/// parameters (the chemistry lives in `ls3df-atoms`/`ls3df-pseudo`).
#[derive(Clone, Copy, Debug)]
pub struct PwAtom {
    /// Cartesian position (Bohr).
    pub pos: [f64; 3],
    /// Local pseudopotential.
    pub local: LocalPotential,
    /// KB projector radial width (Bohr).
    pub kb_rb: f64,
    /// KB projector strength (Hartree); 0 = no nonlocal part.
    pub kb_energy: f64,
}

/// Builds the total ionic local potential `V_ion(r)` on the basis grid by
/// reciprocal-space assembly (structure factor × form factor).
pub fn ionic_potential(basis: &PwBasis, atoms: &[PwAtom]) -> RealField {
    ionic_potential_with(basis, atoms, kernel_policy())
}

/// [`ionic_potential`] under an explicit [`KernelPolicy`] — the in-process
/// A/B entry point for the fast-vs-reference tolerance gate
/// (`tests/kernel_tol.rs`); production callers use [`ionic_potential`],
/// which latches the policy from `LS3DF_KERNELS`.
pub fn ionic_potential_with(basis: &PwBasis, atoms: &[PwAtom], policy: KernelPolicy) -> RealField {
    synthesize_real_field_with(basis, atoms, |a, q| atoms[a].local.fourier(q), policy)
}

/// Synthesizes the real field `Σ_G F(G)e^{iG·r}` from a per-atom form
/// factor. Real form factors make the spectrum Hermitian, so the fast
/// path assembles only the packed x half and runs one c2r transform —
/// about half the structure-factor and transform work of the
/// complex-grid reference sweep.
fn synthesize_real_field<F: Fn(usize, f64) -> f64>(
    basis: &PwBasis,
    atoms: &[PwAtom],
    form: F,
) -> RealField {
    synthesize_real_field_with(basis, atoms, form, kernel_policy())
}

fn synthesize_real_field_with<F: Fn(usize, f64) -> f64>(
    basis: &PwBasis,
    atoms: &[PwAtom],
    form: F,
    policy: KernelPolicy,
) -> RealField {
    let grid = basis.grid().clone();
    let positions: Vec<[f64; 3]> = atoms.iter().map(|a| a.pos).collect();
    let n = grid.len() as f64;
    let data: Vec<f64> = match policy {
        KernelPolicy::Fast => {
            let rfft = Fft3r::new_with(grid.dims, policy);
            let mut spec = vec![c64::ZERO; rfft.packed_len()];
            basis.lattice_sum_packed(&positions, form, &mut spec);
            let mut ws = rfft.workspace();
            let mut out = vec![0.0_f64; grid.len()];
            rfft.inverse(&mut spec, &mut out, &mut ws);
            // inverse carries 1/N; the plain sum needs the ×N back.
            for v in &mut out {
                *v *= n;
            }
            out
        }
        KernelPolicy::Reference => {
            let mut vg = vec![c64::ZERO; grid.len()];
            basis.lattice_sum(&positions, form, &mut vg);
            basis.fft().inverse(&mut vg);
            // inverse carries 1/N, but Σ_G F(G)e^{iGr} needs the plain sum.
            vg.iter().map(|v| v.re * n).collect()
        }
    };
    RealField::from_vec(grid, data)
}

/// Builds a superposition-of-atoms initial density: one normalized
/// Gaussian of `z` electrons and width `w` per atom, assembled in
/// reciprocal space (so the periodic images are exact), then clipped to be
/// non-negative and rescaled to the exact electron count.
pub fn initial_density(basis: &PwBasis, atoms: &[PwAtom], width: f64) -> RealField {
    let mut rho = synthesize_real_field(basis, atoms, |a, q| {
        atoms[a].local.z * (-q * q * width * width / 4.0).exp()
    });
    let grid = rho.grid().clone();
    let data = rho.as_mut_slice();
    for v in data.iter_mut() {
        *v = v.max(0.0);
    }
    // Rescale to the exact electron count after clipping.
    let n_elec: f64 = atoms.iter().map(|a| a.local.z).sum();
    let current: f64 = data.iter().sum::<f64>() * grid.dv();
    if current > 1e-12 {
        let s = n_elec / current;
        for v in data.iter_mut() {
            *v *= s;
        }
    }
    rho
}

/// Energy bookkeeping pieces of one effective-potential evaluation.
#[derive(Clone, Copy, Debug, Default)]
pub struct PotentialEnergies {
    /// Hartree energy `½∫ρV_H`.
    pub hartree: f64,
    /// XC energy `∫ρ·ε_xc`.
    pub xc: f64,
    /// `∫ρ·v_xc` (needed for the double-counting correction).
    pub vxc_rho: f64,
    /// `∫ρ·V_ion`.
    pub ion_rho: f64,
}

/// Evaluates `V_eff = V_ion + V_H[ρ] + V_xc[ρ]` and the associated energy
/// integrals, reusing the basis FFT plan.
pub fn effective_potential(
    basis: &PwBasis,
    v_ion: &RealField,
    rho: &RealField,
) -> (RealField, PotentialEnergies) {
    let grid = basis.grid();
    let v_h = hartree::hartree_potential_with(rho, basis.fft(), grid);
    assemble_effective(grid, v_ion, rho, v_h)
}

/// [`effective_potential`] through a cached [`hartree::HartreeSolver`], so
/// repeated SCF iterations reuse the Poisson plan, reciprocal kernel, and
/// FFT scratch instead of rebuilding them per call.
pub fn effective_potential_with(
    basis: &PwBasis,
    v_ion: &RealField,
    rho: &RealField,
    hartree: &hartree::HartreeSolver,
) -> (RealField, PotentialEnergies) {
    let grid = basis.grid();
    assert_eq!(hartree.grid(), grid, "effective_potential: solver grid");
    let mut v_h = RealField::zeros(grid.clone());
    hartree.solve_into(rho, &mut v_h);
    assemble_effective(grid, v_ion, rho, v_h)
}

fn assemble_effective(
    grid: &ls3df_grid::Grid3,
    v_ion: &RealField,
    rho: &RealField,
    v_h: RealField,
) -> (RealField, PotentialEnergies) {
    let mut v_eff = v_ion.clone();
    v_eff.add_scaled(1.0, &v_h);
    let dv = grid.dv();
    let mut vxc = vec![0.0_f64; grid.len()];
    xc::vxc_field(rho.as_slice(), &mut vxc);
    let mut energies = PotentialEnergies {
        hartree: hartree::hartree_energy(rho, &v_h),
        xc: xc::exc_energy(rho.as_slice(), dv),
        ..Default::default()
    };
    for ((v, &x), (&r, &vi)) in v_eff
        .as_mut_slice()
        .iter_mut()
        .zip(&vxc)
        .zip(rho.as_slice().iter().zip(v_ion.as_slice()))
    {
        *v += x;
        energies.vxc_rho += r * x;
        energies.ion_rho += r * vi;
    }
    energies.vxc_rho *= dv;
    energies.ion_rho *= dv;
    (v_eff, energies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls3df_grid::Grid3;

    fn test_atoms() -> Vec<PwAtom> {
        vec![
            PwAtom {
                pos: [2.0, 2.0, 2.0],
                local: LocalPotential {
                    z: 4.0,
                    rc: 1.0,
                    a: 2.0,
                    w: 0.9,
                },
                kb_rb: 1.0,
                kb_energy: 0.0,
            },
            PwAtom {
                pos: [6.0, 6.0, 6.0],
                local: LocalPotential {
                    z: 2.0,
                    rc: 1.2,
                    a: 1.0,
                    w: 1.0,
                },
                kb_rb: 1.0,
                kb_energy: 0.0,
            },
        ]
    }

    #[test]
    fn ionic_potential_real_and_attractive_at_nuclei() {
        let basis = PwBasis::new(Grid3::cubic(16, 8.0), 2.0);
        let v = ionic_potential(&basis, &test_atoms());
        // Attractive wells centred at the atoms: the grid point nearest an
        // atom should be well below the cell average.
        let near = v.at(4, 4, 4); // (2,2,2) at spacing 0.5
        assert!(near < v.mean() - 0.5, "near = {near}, mean = {}", v.mean());
    }

    #[test]
    fn initial_density_integrates_to_valence() {
        let basis = PwBasis::new(Grid3::cubic(16, 8.0), 2.0);
        let rho = initial_density(&basis, &test_atoms(), 1.2);
        assert!((rho.integrate() - 6.0).abs() < 1e-9);
        assert!(rho.min() >= 0.0);
        // Peaked at the atoms.
        assert!(rho.at(4, 4, 4) > 4.0 * rho.mean() / 3.0);
    }

    #[test]
    fn effective_potential_energy_bookkeeping() {
        let basis = PwBasis::new(Grid3::cubic(12, 8.0), 1.5);
        let atoms = test_atoms();
        let v_ion = ionic_potential(&basis, &atoms);
        let rho = initial_density(&basis, &atoms, 1.2);
        let (v_eff, en) = effective_potential(&basis, &v_ion, &rho);
        assert!(en.hartree > 0.0);
        assert!(en.xc < 0.0);
        assert!(en.vxc_rho < 0.0);
        // v_eff differs from v_ion by V_H + V_xc.
        let diff = v_eff.diff(&v_ion);
        assert!(diff.max_abs() > 1e-3);
        // ∫ρ·v_xc ≈ Σρ·v_xc·dv recomputed directly.
        let dv = basis.grid().dv();
        let manual: f64 = rho.as_slice().iter().map(|&r| r * xc::v_xc(r)).sum::<f64>() * dv;
        assert!((manual - en.vxc_rho).abs() < 1e-10);
    }

    #[test]
    fn packed_synthesis_matches_reference() {
        // Ionic-potential form factor, even and odd x extents: the packed
        // half-spectrum c2r assembly must agree with the complex-grid
        // reference to synthesis tolerance.
        for grid in [
            Grid3::cubic(12, 8.0),
            Grid3::new([9, 12, 10], [8.0, 8.0, 8.0]),
        ] {
            let basis = PwBasis::new(grid, 1.5);
            let atoms = test_atoms();
            let fast = synthesize_real_field_with(
                &basis,
                &atoms,
                |a, q| atoms[a].local.fourier(q),
                KernelPolicy::Fast,
            );
            let reference = synthesize_real_field_with(
                &basis,
                &atoms,
                |a, q| atoms[a].local.fourier(q),
                KernelPolicy::Reference,
            );
            let diff = fast.diff(&reference).max_abs();
            assert!(diff < 1e-10, "packed vs reference synthesis: {diff}");
        }
    }

    #[test]
    fn periodic_images_consistent() {
        // An atom at the corner (0,0,0) must produce the same potential
        // profile as one shifted by a full lattice vector.
        let basis = PwBasis::new(Grid3::cubic(12, 6.0), 1.5);
        let mk = |pos: [f64; 3]| {
            vec![PwAtom {
                pos,
                local: LocalPotential {
                    z: 3.0,
                    rc: 1.0,
                    a: 0.5,
                    w: 1.0,
                },
                kb_rb: 1.0,
                kb_energy: 0.0,
            }]
        };
        let v1 = ionic_potential(&basis, &mk([0.0, 0.0, 0.0]));
        let v2 = ionic_potential(&basis, &mk([6.0, 6.0, 0.0]));
        let d = v1.diff(&v2);
        assert!(d.max_abs() < 1e-9);
    }
}
