//! FFT Poisson solver — the serial kernel of the paper's GENPOT step.
//!
//! Solves `∇²V_H = −4πρ` on the periodic grid:
//! `V_H(G) = 4π·ρ(G)/|G|²`, with the `G = 0` component set to zero
//! (jellium convention for charge-neutral cells).

use ls3df_fft::{Fft3, Fft3Workspace, Fft3r, Fft3rWorkspace};
use ls3df_grid::{Grid3, RealField};
use ls3df_math::{c64, kernel_policy, KernelPolicy};
use std::sync::Mutex;

/// Scratch one Poisson solve needs; the variant matches the solver's
/// kernel policy (a solver pool never mixes variants).
enum HartreeScratch {
    /// Reference path: full complex grid buffer + complex FFT scratch.
    Complex { buf: Vec<c64>, ws: Fft3Workspace },
    /// Fast path: packed `(n1/2+1)·n2·n3` spectrum + r2c FFT scratch.
    Packed { spec: Vec<c64>, ws: Fft3rWorkspace },
}

/// Cached FFT Poisson solver for one grid geometry: the FFT plans
/// (including Bluestein filter FFTs) and the reciprocal-space kernel
/// are built once at construction, not per solve.
///
/// Under [`KernelPolicy::Fast`] the solve runs through the packed
/// [`Fft3r`] r2c/c2r transform — ρ and V are real, so only the
/// non-redundant Hermitian half of the spectrum is ever computed or
/// scaled. [`KernelPolicy::Reference`] keeps the pre-PR-8 complex-grid
/// arithmetic bit-for-bit (the golden-digest anchor).
///
/// [`HartreeSolver::solve_into`] is the steady-state GENPOT entry point:
/// after the first call has warmed the internal scratch pool it performs
/// no heap allocation on either path.
pub struct HartreeSolver {
    grid: Grid3,
    fft: Fft3,
    policy: KernelPolicy,
    /// Packed r2c plan (fast path only; built either way — plan
    /// construction is cheap next to the coefficient tables).
    rfft: Fft3r,
    /// Reference kernel: `4π/(|G|²·N)` per grid point, `0` at `G = 0`.
    coeffs: Vec<f64>,
    /// Fast kernel on the packed grid: `4π/|G|²` (no `1/N` — the c2r
    /// inverse carries the full normalization), `0` at `G = 0`.
    packed_coeffs: Vec<f64>,
    pool: Mutex<Vec<HartreeScratch>>,
}

impl HartreeSolver {
    /// Builds the solver for a grid geometry (plans + kernels, once)
    /// under the process-wide kernel policy.
    pub fn new(grid: Grid3) -> Self {
        Self::new_with(grid, kernel_policy())
    }

    /// [`HartreeSolver::new`] with an explicit [`KernelPolicy`] — lets
    /// tests and benches compare both paths in one process.
    pub fn new_with(grid: Grid3, policy: KernelPolicy) -> Self {
        let fft = Fft3::new(grid.dims[0], grid.dims[1], grid.dims[2]);
        let rfft = Fft3r::new_with(grid.dims, policy);
        let n = grid.len() as f64;
        let coeffs = (0..grid.len())
            .map(|idx| {
                let (ix, iy, iz) = grid.coords(idx);
                let g2 = grid.g2(ix, iy, iz);
                if g2 == 0.0 {
                    0.0
                } else {
                    4.0 * std::f64::consts::PI / (g2 * n)
                }
            })
            .collect();
        // Packed layout: ix in 0..n1/2+1 (the kept Hermitian half), with
        // the same (iy, iz) sweep as the full grid, x fastest.
        let h1 = rfft.packed_nx();
        let mut packed_coeffs = Vec::with_capacity(rfft.packed_len());
        for iz in 0..grid.dims[2] {
            for iy in 0..grid.dims[1] {
                for ix in 0..h1 {
                    let g2 = grid.g2(ix, iy, iz);
                    packed_coeffs.push(if g2 == 0.0 {
                        0.0
                    } else {
                        4.0 * std::f64::consts::PI / g2
                    });
                }
            }
        }
        HartreeSolver {
            grid,
            fft,
            policy,
            rfft,
            coeffs,
            packed_coeffs,
            pool: Mutex::new(Vec::new()),
        }
    }

    /// The grid this solver was built for.
    pub fn grid(&self) -> &Grid3 {
        &self.grid
    }

    /// The cached FFT plan (shared with callers that need one-off grid
    /// transforms on the same geometry).
    pub fn fft(&self) -> &Fft3 {
        &self.fft
    }

    /// Solves `∇²V_H = −4πρ` into `out` (both on the solver's grid).
    /// Heap-free once the internal scratch pool is warm.
    pub fn solve_into(&self, rho: &RealField, out: &mut RealField) {
        assert_eq!(rho.grid(), &self.grid, "hartree: density grid mismatch");
        assert_eq!(out.grid(), &self.grid, "hartree: output grid mismatch");
        ls3df_obs::counter_add(ls3df_obs::Counter::HartreeSolves, 1);
        let scratch = self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop();
        // alloc-audit: pool warmup only — steady state reuses the scratch.
        let mut scratch = scratch.unwrap_or_else(|| match self.policy {
            KernelPolicy::Reference => HartreeScratch::Complex {
                buf: vec![c64::ZERO; self.grid.len()],
                ws: self.fft.workspace(),
            },
            KernelPolicy::Fast => HartreeScratch::Packed {
                spec: vec![c64::ZERO; self.rfft.packed_len()],
                ws: self.rfft.workspace(),
            },
        });
        match &mut scratch {
            HartreeScratch::Complex { buf, ws } => {
                for (b, &r) in buf.iter_mut().zip(rho.as_slice()) {
                    *b = c64::real(r);
                }
                self.fft.forward_with(buf, ws);
                for (v, &k) in buf.iter_mut().zip(&self.coeffs) {
                    // k = 0 in the G = 0 slot projects out the mean
                    // (jellium), matching the branch in
                    // hartree_potential_with exactly (x·0 = 0 for the
                    // finite FFT outputs here).
                    *v = v.scale(k);
                }
                self.fft.inverse_with(buf, ws);
                // inverse includes 1/N, but the kernel already divided
                // by N above; compensate.
                let n = self.grid.len() as f64;
                for (o, v) in out.as_mut_slice().iter_mut().zip(&*buf) {
                    *o = v.re * n;
                }
            }
            HartreeScratch::Packed { spec, ws } => {
                self.rfft.forward(rho.as_slice(), spec, ws);
                for (v, &k) in spec.iter_mut().zip(&self.packed_coeffs) {
                    // Packed kernel has no 1/N: forward leaves N·ρ(G) in
                    // the bins and the c2r inverse carries the full 1/N,
                    // so scaling by 4π/G² alone lands on V_H exactly.
                    *v = v.scale(k);
                }
                self.rfft.inverse(spec, out.as_mut_slice(), ws);
            }
        }
        self.pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(scratch);
    }

    /// Allocating convenience wrapper over [`HartreeSolver::solve_into`].
    pub fn solve(&self, rho: &RealField) -> RealField {
        let mut out = RealField::zeros(self.grid.clone());
        self.solve_into(rho, &mut out);
        out
    }
}

/// Solves the periodic Poisson equation for the Hartree potential of
/// `rho` (electrons·Bohr⁻³, positive = electron density). Returns the
/// potential in Hartree acting on electrons (repulsive: positive where the
/// density clumps).
///
/// One-shot path (plan built per call): SCF loops should hold a
/// [`HartreeSolver`].
pub fn hartree_potential(rho: &RealField) -> RealField {
    let grid = rho.grid().clone();
    let fft = Fft3::new(grid.dims[0], grid.dims[1], grid.dims[2]);
    hartree_potential_with(rho, &fft, &grid)
}

/// Same as [`hartree_potential`] but reusing an existing FFT plan.
pub fn hartree_potential_with(rho: &RealField, fft: &Fft3, grid: &Grid3) -> RealField {
    assert_eq!(rho.grid(), grid, "hartree: grid mismatch");
    let mut buf: Vec<c64> = rho.as_slice().iter().map(|&v| c64::real(v)).collect();
    fft.forward(&mut buf);
    let n = grid.len() as f64;
    for (idx, v) in buf.iter_mut().enumerate() {
        let (ix, iy, iz) = grid.coords(idx);
        let g2 = grid.g2(ix, iy, iz);
        if g2 == 0.0 {
            *v = c64::ZERO;
        } else {
            // forward is unnormalized → ρ(G) = buf/N.
            *v = v.scale(4.0 * std::f64::consts::PI / (g2 * n));
        }
    }
    fft.inverse(&mut buf);
    // inverse includes 1/N, but we already divided by N above; compensate.
    let mut out = RealField::zeros(grid.clone());
    for (o, v) in out.as_mut_slice().iter_mut().zip(&buf) {
        *o = v.re * n;
    }
    out
}

/// Hartree energy `E_H = ½·∫ρ·V_H d³r`.
pub fn hartree_energy(rho: &RealField, v_h: &RealField) -> f64 {
    assert_eq!(rho.grid(), v_h.grid());
    0.5 * rho
        .as_slice()
        .iter()
        .zip(v_h.as_slice())
        .map(|(&r, &v)| r * v)
        .sum::<f64>()
        * rho.grid().dv()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn single_cosine_mode_analytic() {
        // ρ(r) = cos(G·x) with G = 2π/L → V = 4π/G²·cos(Gx).
        let l = 8.0;
        let grid = Grid3::cubic(16, l);
        let g = 2.0 * PI / l;
        let rho = RealField::from_fn(grid.clone(), |r| (g * r[0]).cos());
        let v = hartree_potential(&rho);
        let expect = 4.0 * PI / (g * g);
        for (idx, &val) in v.as_slice().iter().enumerate() {
            let (ix, _, _) = v.grid().coords(idx);
            let x = ix as f64 * l / 16.0;
            assert!(
                (val - expect * (g * x).cos()).abs() < 1e-9,
                "V({x}) = {val}, expected {}",
                expect * (g * x).cos()
            );
        }
    }

    #[test]
    fn cached_solver_matches_one_shot_path() {
        let grid = Grid3::new([10, 8, 9], [7.0, 5.5, 6.0]);
        let rho = RealField::from_fn(grid.clone(), |r| {
            (r[0] * 0.9).sin() + 0.3 * (r[1] * 1.1).cos() * (r[2] * 0.5).sin()
        });
        let reference = hartree_potential(&rho);
        let solver = HartreeSolver::new(grid.clone());
        let mut out = RealField::zeros(grid);
        // Twice: the second call exercises the warmed (dirty) scratch pool.
        solver.solve_into(&rho, &mut out);
        solver.solve_into(&rho, &mut out);
        let diff = reference.diff(&out);
        assert!(
            diff.max_abs() < 1e-11,
            "cached vs one-shot: {}",
            diff.max_abs()
        );
        let again = solver.solve(&rho);
        assert!(
            out.diff(&again).max_abs() == 0.0,
            "solve vs solve_into drifted"
        );
    }

    #[test]
    fn packed_fast_path_matches_reference_path() {
        // Even, odd, and mixed-parity x-extents: the packed r2c trick
        // (even n1) and the odd-length fallback must both agree with the
        // complex-grid reference arithmetic to solver tolerance.
        for dims in [[16usize, 8, 8], [9, 8, 8], [10, 8, 9], [40, 4, 4]] {
            let grid = Grid3::new(dims, [7.0, 5.5, 6.0]);
            let rho = RealField::from_fn(grid.clone(), |r| {
                (r[0] * 0.9).sin() + 0.3 * (r[1] * 1.1).cos() * (r[2] * 0.5).sin()
            });
            let fast = HartreeSolver::new_with(grid.clone(), KernelPolicy::Fast);
            let reference = HartreeSolver::new_with(grid.clone(), KernelPolicy::Reference);
            let mut v_fast = RealField::zeros(grid.clone());
            let mut v_ref = RealField::zeros(grid);
            // Twice: the second call exercises the warmed packed pool.
            fast.solve_into(&rho, &mut v_fast);
            fast.solve_into(&rho, &mut v_fast);
            reference.solve_into(&rho, &mut v_ref);
            let diff = v_fast.diff(&v_ref).max_abs();
            assert!(diff < 1e-10, "dims {dims:?}: fast vs reference {diff}");
        }
    }

    #[test]
    fn gauge_invariant_to_constant_density_shift() {
        // Adding a uniform background changes only the G = 0 channel, which
        // is projected out → same potential.
        let grid = Grid3::cubic(12, 6.0);
        let rho1 = RealField::from_fn(grid.clone(), |r| (r[0] - 3.0).powi(2) * 0.1);
        let mut rho2 = rho1.clone();
        rho2.shift(0.7);
        let v1 = hartree_potential(&rho1);
        let v2 = hartree_potential(&rho2);
        let diff = v1.diff(&v2);
        assert!(diff.max_abs() < 1e-10);
    }

    #[test]
    fn output_mean_is_zero() {
        let grid = Grid3::new([8, 10, 12], [5.0, 6.0, 7.0]);
        let rho = RealField::from_fn(grid, |r| (r[0] * 1.3).sin() + 0.2 * (r[2] * 0.7).cos());
        let v = hartree_potential(&rho);
        assert!(v.mean().abs() < 1e-10);
    }

    #[test]
    fn energy_positive_for_localized_charge() {
        let grid = Grid3::cubic(16, 10.0);
        let rho = RealField::from_fn(grid, |r| {
            let d2 = (r[0] - 5.0).powi(2) + (r[1] - 5.0).powi(2) + (r[2] - 5.0).powi(2);
            (-d2).exp()
        });
        let v = hartree_potential(&rho);
        assert!(hartree_energy(&rho, &v) > 0.0);
    }

    #[test]
    fn laplacian_consistency() {
        // ∇²V = −4π(ρ − ρ̄): check via finite differences at interior points.
        let n = 20;
        let l = 10.0;
        let grid = Grid3::cubic(n, l);
        let rho = RealField::from_fn(grid.clone(), |r| {
            (2.0 * PI * r[0] / l).cos() * (2.0 * PI * r[1] / l).sin()
        });
        let v = hartree_potential(&rho);
        let h = l / n as f64;
        let mean = rho.mean();
        for &(ix, iy, iz) in &[(5i64, 5i64, 5i64), (10, 3, 7), (1, 18, 9)] {
            let lap = (v.at_wrapped(ix + 1, iy, iz)
                + v.at_wrapped(ix - 1, iy, iz)
                + v.at_wrapped(ix, iy + 1, iz)
                + v.at_wrapped(ix, iy - 1, iz)
                + v.at_wrapped(ix, iy, iz + 1)
                + v.at_wrapped(ix, iy, iz - 1)
                - 6.0 * v.at_wrapped(ix, iy, iz))
                / (h * h);
            let target = -4.0 * PI * (rho.at_wrapped(ix, iy, iz) - mean);
            // Second-order stencil on a smooth mode: tolerance ~h².
            assert!(
                (lap - target).abs() < 0.1 * target.abs().max(1.0),
                "∇²V = {lap}, want {target}"
            );
        }
    }
}
