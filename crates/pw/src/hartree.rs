//! FFT Poisson solver — the serial kernel of the paper's GENPOT step.
//!
//! Solves `∇²V_H = −4πρ` on the periodic grid:
//! `V_H(G) = 4π·ρ(G)/|G|²`, with the `G = 0` component set to zero
//! (jellium convention for charge-neutral cells).

use ls3df_fft::Fft3;
use ls3df_grid::{Grid3, RealField};
use ls3df_math::c64;

/// Solves the periodic Poisson equation for the Hartree potential of
/// `rho` (electrons·Bohr⁻³, positive = electron density). Returns the
/// potential in Hartree acting on electrons (repulsive: positive where the
/// density clumps).
pub fn hartree_potential(rho: &RealField) -> RealField {
    let grid = rho.grid().clone();
    let fft = Fft3::new(grid.dims[0], grid.dims[1], grid.dims[2]);
    hartree_potential_with(rho, &fft, &grid)
}

/// Same as [`hartree_potential`] but reusing an existing FFT plan.
pub fn hartree_potential_with(rho: &RealField, fft: &Fft3, grid: &Grid3) -> RealField {
    assert_eq!(rho.grid(), grid, "hartree: grid mismatch");
    let mut buf: Vec<c64> = rho.as_slice().iter().map(|&v| c64::real(v)).collect();
    fft.forward(&mut buf);
    let n = grid.len() as f64;
    for (idx, v) in buf.iter_mut().enumerate() {
        let (ix, iy, iz) = grid.coords(idx);
        let g2 = grid.g2(ix, iy, iz);
        if g2 == 0.0 {
            *v = c64::ZERO;
        } else {
            // forward is unnormalized → ρ(G) = buf/N.
            *v = v.scale(4.0 * std::f64::consts::PI / (g2 * n));
        }
    }
    fft.inverse(&mut buf);
    // inverse includes 1/N, but we already divided by N above; compensate.
    let mut out = RealField::zeros(grid.clone());
    for (o, v) in out.as_mut_slice().iter_mut().zip(&buf) {
        *o = v.re * n;
    }
    out
}

/// Hartree energy `E_H = ½·∫ρ·V_H d³r`.
pub fn hartree_energy(rho: &RealField, v_h: &RealField) -> f64 {
    assert_eq!(rho.grid(), v_h.grid());
    0.5 * rho
        .as_slice()
        .iter()
        .zip(v_h.as_slice())
        .map(|(&r, &v)| r * v)
        .sum::<f64>()
        * rho.grid().dv()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn single_cosine_mode_analytic() {
        // ρ(r) = cos(G·x) with G = 2π/L → V = 4π/G²·cos(Gx).
        let l = 8.0;
        let grid = Grid3::cubic(16, l);
        let g = 2.0 * PI / l;
        let rho = RealField::from_fn(grid.clone(), |r| (g * r[0]).cos());
        let v = hartree_potential(&rho);
        let expect = 4.0 * PI / (g * g);
        for (idx, &val) in v.as_slice().iter().enumerate() {
            let (ix, _, _) = v.grid().coords(idx);
            let x = ix as f64 * l / 16.0;
            assert!(
                (val - expect * (g * x).cos()).abs() < 1e-9,
                "V({x}) = {val}, expected {}",
                expect * (g * x).cos()
            );
        }
    }

    #[test]
    fn gauge_invariant_to_constant_density_shift() {
        // Adding a uniform background changes only the G = 0 channel, which
        // is projected out → same potential.
        let grid = Grid3::cubic(12, 6.0);
        let rho1 = RealField::from_fn(grid.clone(), |r| (r[0] - 3.0).powi(2) * 0.1);
        let mut rho2 = rho1.clone();
        rho2.shift(0.7);
        let v1 = hartree_potential(&rho1);
        let v2 = hartree_potential(&rho2);
        let diff = v1.diff(&v2);
        assert!(diff.max_abs() < 1e-10);
    }

    #[test]
    fn output_mean_is_zero() {
        let grid = Grid3::new([8, 10, 12], [5.0, 6.0, 7.0]);
        let rho = RealField::from_fn(grid, |r| (r[0] * 1.3).sin() + 0.2 * (r[2] * 0.7).cos());
        let v = hartree_potential(&rho);
        assert!(v.mean().abs() < 1e-10);
    }

    #[test]
    fn energy_positive_for_localized_charge() {
        let grid = Grid3::cubic(16, 10.0);
        let rho = RealField::from_fn(grid, |r| {
            let d2 = (r[0] - 5.0).powi(2) + (r[1] - 5.0).powi(2) + (r[2] - 5.0).powi(2);
            (-d2).exp()
        });
        let v = hartree_potential(&rho);
        assert!(hartree_energy(&rho, &v) > 0.0);
    }

    #[test]
    fn laplacian_consistency() {
        // ∇²V = −4π(ρ − ρ̄): check via finite differences at interior points.
        let n = 20;
        let l = 10.0;
        let grid = Grid3::cubic(n, l);
        let rho = RealField::from_fn(grid.clone(), |r| {
            (2.0 * PI * r[0] / l).cos() * (2.0 * PI * r[1] / l).sin()
        });
        let v = hartree_potential(&rho);
        let h = l / n as f64;
        let mean = rho.mean();
        for &(ix, iy, iz) in &[(5i64, 5i64, 5i64), (10, 3, 7), (1, 18, 9)] {
            let lap = (v.at_wrapped(ix + 1, iy, iz)
                + v.at_wrapped(ix - 1, iy, iz)
                + v.at_wrapped(ix, iy + 1, iz)
                + v.at_wrapped(ix, iy - 1, iz)
                + v.at_wrapped(ix, iy, iz + 1)
                + v.at_wrapped(ix, iy, iz - 1)
                - 6.0 * v.at_wrapped(ix, iy, iz))
                / (h * h);
            let target = -4.0 * PI * (rho.at_wrapped(ix, iy, iz) - mean);
            // Second-order stencil on a smooth mode: tolerance ~h².
            assert!(
                (lap - target).abs() < 0.1 * target.abs().max(1.0),
                "∇²V = {lap}, want {target}"
            );
        }
    }
}
