//! Independent finite-difference reference solver.
//!
//! A completely separate discretization (7-point real-space Laplacian +
//! preconditioned conjugate-gradient ground state) used to cross-validate
//! the planewave machinery: two independent codes agreeing on the same
//! Schrödinger problem is the strongest correctness evidence a from-
//! scratch solver can have. Deliberately shares *no* numerical kernels
//! with the planewave path (no FFT, no PwBasis).

use ls3df_grid::RealField;

/// Applies `H = −½∇²_FD + V` with the 2nd-order 7-point stencil under
/// periodic boundaries.
pub fn apply_fd(v: &RealField, psi: &[f64], out: &mut [f64]) {
    let grid = v.grid();
    let n = grid.len();
    assert_eq!(psi.len(), n);
    assert_eq!(out.len(), n);
    let h = grid.spacing();
    let (cx, cy, cz) = (
        0.5 / (h[0] * h[0]),
        0.5 / (h[1] * h[1]),
        0.5 / (h[2] * h[2]),
    );
    let diag = 2.0 * (cx + cy + cz);
    let [n1, n2, n3] = grid.dims;
    for iz in 0..n3 {
        for iy in 0..n2 {
            for ix in 0..n1 {
                let idx = grid.index(ix, iy, iz);
                let (ix, iy, iz) = (ix as i64, iy as i64, iz as i64);
                let lap = cx
                    * (psi[grid.index_wrapped(ix + 1, iy, iz)]
                        + psi[grid.index_wrapped(ix - 1, iy, iz)])
                    + cy * (psi[grid.index_wrapped(ix, iy + 1, iz)]
                        + psi[grid.index_wrapped(ix, iy - 1, iz)])
                    + cz * (psi[grid.index_wrapped(ix, iy, iz + 1)]
                        + psi[grid.index_wrapped(ix, iy, iz - 1)]);
                out[idx] = (diag + v.as_slice()[idx]) * psi[idx] - lap;
            }
        }
    }
}

/// Finds the finite-difference ground state of `−½∇² + V` by steepest
/// descent with line minimization (robust, dependency-free). Returns
/// `(energy, wavefunction)` with `Σψ²·dv = 1`.
pub fn fd_ground_state(v: &RealField, max_iter: usize, tol: f64) -> (f64, Vec<f64>) {
    let grid = v.grid();
    let n = grid.len();
    let dv = grid.dv();
    // Deterministic smooth start: a broad Gaussian at the potential's
    // minimum.
    let (mut min_idx, mut min_v) = (0usize, f64::INFINITY);
    for (i, &val) in v.as_slice().iter().enumerate() {
        if val < min_v {
            min_v = val;
            min_idx = i;
        }
    }
    let (cx, cy, cz) = grid.coords(min_idx);
    let center = grid.position(cx, cy, cz);
    let mut psi: Vec<f64> = (0..n)
        .map(|i| {
            let (ix, iy, iz) = grid.coords(i);
            let r = grid.position(ix, iy, iz);
            let d = grid.min_image(center, r);
            (-(d[0] * d[0] + d[1] * d[1] + d[2] * d[2]) / 4.0).exp()
        })
        .collect();
    normalize(&mut psi, dv);

    let mut hpsi = vec![0.0; n];
    let mut energy = f64::INFINITY;
    for _ in 0..max_iter {
        apply_fd(v, &psi, &mut hpsi);
        let e = dot(&psi, &hpsi, dv);
        // Residual r = Hψ − Eψ.
        let mut r: Vec<f64> = hpsi.iter().zip(&psi).map(|(&h, &p)| h - e * p).collect();
        let rnorm = dot(&r, &r, dv).sqrt();
        if rnorm < tol {
            energy = e;
            break;
        }
        // Project r ⊥ ψ and normalize.
        let overlap = dot(&r, &psi, dv);
        for (ri, &pi) in r.iter_mut().zip(&psi) {
            *ri -= overlap * pi;
        }
        let rn = dot(&r, &r, dv).sqrt();
        if rn < 1e-300 {
            energy = e;
            break;
        }
        for ri in r.iter_mut() {
            *ri /= rn;
        }
        // Exact 2-state line minimization in span{ψ, r}.
        let mut hr = vec![0.0; n];
        apply_fd(v, &r, &mut hr);
        let a = e;
        let c = dot(&r, &hr, dv);
        let w = dot(&psi, &hr, dv);
        let theta = 0.5 * (2.0 * w).atan2(a - c);
        let e_of = |t: f64| 0.5 * (a + c) + 0.5 * (a - c) * (2.0 * t).cos() + w * (2.0 * t).sin();
        let t2 = theta + std::f64::consts::FRAC_PI_2;
        let t_best = if e_of(theta) <= e_of(t2) { theta } else { t2 };
        let (s, co) = t_best.sin_cos();
        for i in 0..n {
            psi[i] = co * psi[i] + s * r[i];
        }
        normalize(&mut psi, dv);
        energy = e_of(t_best);
    }
    (energy, psi)
}

fn dot(a: &[f64], b: &[f64], dv: f64) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum::<f64>() * dv
}

fn normalize(psi: &mut [f64], dv: f64) {
    let n = dot(psi, psi, dv).sqrt();
    for p in psi.iter_mut() {
        *p /= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::NonlocalPotential;
    use crate::{solve_all_band, PwBasis, SolverOptions};
    use ls3df_grid::Grid3;

    #[test]
    fn fd_hamiltonian_is_symmetric() {
        let grid = Grid3::cubic(8, 6.0);
        let v = RealField::from_fn(grid.clone(), |r| 0.2 * (r[0] - 3.0));
        let n = grid.len();
        let mut state = 1u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let a: Vec<f64> = (0..n).map(|_| next()).collect();
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let mut ha = vec![0.0; n];
        let mut hb = vec![0.0; n];
        apply_fd(&v, &a, &mut ha);
        apply_fd(&v, &b, &mut hb);
        let dv = grid.dv();
        assert!((dot(&a, &hb, dv) - dot(&b, &ha, dv)).abs() < 1e-10);
    }

    #[test]
    fn constant_potential_ground_state_is_uniform() {
        let grid = Grid3::cubic(8, 5.0);
        let v = RealField::constant(grid.clone(), 0.7);
        let (e, psi) = fd_ground_state(&v, 400, 1e-9);
        assert!((e - 0.7).abs() < 1e-7, "E = {e}");
        let mean = psi.iter().sum::<f64>() / psi.len() as f64;
        for &p in &psi {
            assert!((p - mean).abs() < 1e-5);
        }
    }

    #[test]
    fn planewave_and_fd_agree_on_gaussian_well() {
        // THE cross-validation: two independent discretizations of the same
        // well must agree on the ground-state energy to discretization
        // accuracy (FD is 2nd order → tolerance set by h²·|V''| here).
        let l = 10.0;
        let n = 20;
        let grid = Grid3::cubic(n, l);
        let v = RealField::from_fn(grid.clone(), |r| {
            let d2 = (r[0] - 5.0).powi(2) + (r[1] - 5.0).powi(2) + (r[2] - 5.0).powi(2);
            -1.2 * (-d2 / 4.0).exp()
        });
        // Finite differences.
        let (e_fd, _) = fd_ground_state(&v, 2000, 1e-8);
        // Planewaves (high cutoff so the PW error is negligible).
        let basis = PwBasis::new(grid.clone(), 3.0);
        let nl = NonlocalPotential::none(&basis);
        let h = crate::Hamiltonian::new(&basis, v, &nl);
        let mut psi = crate::scf::random_start(2, &basis, 3);
        let stats = solve_all_band(
            &h,
            &mut psi,
            &SolverOptions {
                max_iter: 300,
                tol: 1e-9,
                ..Default::default()
            },
        );
        assert!(stats.converged);
        let e_pw = stats.eigenvalues[0];
        // h = 0.5 Bohr; the 2nd-order FD error on this well is ~1e-2·h².
        assert!(
            (e_fd - e_pw).abs() < 0.01,
            "finite differences {e_fd} vs planewaves {e_pw}"
        );
        assert!(e_pw < -0.2, "well must bind: {e_pw}");
    }
}
