//! Planewave basis within an energy cutoff.
//!
//! Conventions (used consistently across the direct solver and LS3DF):
//!
//! * orbital `ψ(r) = (1/√Ω)·Σ_G c_G·e^{iG·r}` with `Σ_G |c_G|² = 1`;
//! * the basis contains every reciprocal vector with kinetic energy
//!   `|G|²/2 ≤ E_cut` (Hartree units, Γ-point);
//! * grid transfers: [`PwBasis::wave_to_grid`] produces `ψ(rᵢ)` such that
//!   `Σᵢ |ψ(rᵢ)|²·dv = 1`, and [`PwBasis::grid_to_wave`] is its exact
//!   left inverse.

use ls3df_fft::{Fft3, Fft3Workspace};
use ls3df_grid::Grid3;
use ls3df_math::c64;
use std::sync::Mutex;

/// Planewave basis bound to a periodic grid.
pub struct PwBasis {
    grid: Grid3,
    fft: Fft3,
    ecut: f64,
    /// Linear grid index of each basis G-vector.
    g_slot: Vec<usize>,
    /// |G|² for each basis vector.
    g2: Vec<f64>,
    /// Cartesian G for each basis vector.
    g_vec: Vec<[f64; 3]>,
    /// Pool of FFT workspaces backing the convenience (non-`_with`)
    /// transform methods: after warmup, checkout/return is push/pop on a
    /// preallocated Vec and the transforms stay heap-free.
    ws_pool: Mutex<Vec<Fft3Workspace>>,
}

impl PwBasis {
    /// Builds the basis for `grid` with cutoff `ecut` (Hartree).
    ///
    /// Panics if the grid is too coarse to hold the cutoff sphere (the
    /// highest representable frequency must reach `G_max = √(2·E_cut)`).
    pub fn new(grid: Grid3, ecut: f64) -> Self {
        Self::new_at_k(grid, ecut, [0.0; 3])
    }

    /// Builds the basis at a Bloch vector `k` (Cartesian, Bohr⁻¹): selects
    /// planewaves with `|k+G|²/2 ≤ E_cut`, the variational space a k-point
    /// calculation needs for exact supercell band folding.
    pub fn new_at_k(grid: Grid3, ecut: f64, k: [f64; 3]) -> Self {
        assert!(ecut > 0.0, "PwBasis: cutoff must be positive");
        let g_max = (2.0 * ecut).sqrt();
        for ax in 0..3 {
            let n = grid.dims[ax];
            let nyquist = std::f64::consts::PI * n as f64 / grid.lengths[ax];
            assert!(
                nyquist >= g_max,
                "PwBasis: grid axis {ax} ({n} points over {:.3} Bohr) cannot represent \
                 G_max = {g_max:.3}; increase the grid or lower the cutoff",
                grid.lengths[ax]
            );
        }
        let mut g_slot = Vec::new();
        let mut g2s = Vec::new();
        let mut g_vec = Vec::new();
        for (ix, iy, iz) in grid.iter_points() {
            let g = grid.g_vector(ix, iy, iz);
            let kg2 = (g[0] + k[0]).powi(2) + (g[1] + k[1]).powi(2) + (g[2] + k[2]).powi(2);
            if 0.5 * kg2 <= ecut {
                g_slot.push(grid.index(ix, iy, iz));
                g2s.push(grid.g2(ix, iy, iz));
                g_vec.push(g);
            }
        }
        let fft = Fft3::new(grid.dims[0], grid.dims[1], grid.dims[2]);
        PwBasis {
            grid,
            fft,
            ecut,
            g_slot,
            g2: g2s,
            g_vec,
            ws_pool: Mutex::new(Vec::new()),
        }
    }

    /// Checks an FFT workspace out of the basis pool (building one on
    /// first use). Pair with [`PwBasis::return_fft_workspace`]; long-lived
    /// holders (per-thread solver state) may simply keep it.
    pub fn take_fft_workspace(&self) -> Fft3Workspace {
        let ws = self.ws_pool.lock().unwrap_or_else(|e| e.into_inner()).pop();
        // alloc-audit: pool warmup only — steady state pops a recycled
        // workspace without touching the heap.
        ws.unwrap_or_else(|| self.fft.workspace())
    }

    /// Returns a workspace taken with [`PwBasis::take_fft_workspace`] to
    /// the pool for reuse.
    pub fn return_fft_workspace(&self, ws: Fft3Workspace) {
        self.ws_pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(ws);
    }

    /// Number of planewaves in the basis.
    #[inline]
    pub fn len(&self) -> usize {
        self.g_slot.len()
    }

    /// True if the basis is empty (never for a valid cutoff).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.g_slot.is_empty()
    }

    /// The underlying grid.
    #[inline]
    pub fn grid(&self) -> &Grid3 {
        &self.grid
    }

    /// The FFT plan for this grid.
    #[inline]
    pub fn fft(&self) -> &Fft3 {
        &self.fft
    }

    /// Energy cutoff (Hartree).
    #[inline]
    pub fn ecut(&self) -> f64 {
        self.ecut
    }

    /// `|G|²` per basis vector.
    #[inline]
    pub fn g2(&self) -> &[f64] {
        &self.g2
    }

    /// Cartesian `G` per basis vector.
    #[inline]
    pub fn g_vectors(&self) -> &[[f64; 3]] {
        &self.g_vec
    }

    /// Index of the `G = 0` planewave within the basis.
    pub fn g0_index(&self) -> usize {
        self.g2
            .iter()
            .position(|&g2| g2 == 0.0)
            .expect("basis always contains G = 0")
    }

    /// Scatters planewave coefficients onto the grid and synthesizes
    /// `ψ(rᵢ) = (1/√Ω)·Σ_G c_G·e^{iG·rᵢ}` into `buf` (length = grid size).
    ///
    /// Convenience wrapper over [`PwBasis::wave_to_grid_with`] backed by
    /// the basis workspace pool.
    pub fn wave_to_grid(&self, coeffs: &[c64], buf: &mut [c64]) {
        let mut ws = self.take_fft_workspace();
        self.wave_to_grid_with(coeffs, buf, &mut ws);
        self.return_fft_workspace(ws);
    }

    /// [`PwBasis::wave_to_grid`] through caller-provided FFT scratch —
    /// the allocation-free hot-path entry point.
    pub fn wave_to_grid_with(&self, coeffs: &[c64], buf: &mut [c64], ws: &mut Fft3Workspace) {
        assert_eq!(coeffs.len(), self.len(), "wave_to_grid: coefficient count");
        assert_eq!(buf.len(), self.grid.len(), "wave_to_grid: buffer size");
        buf.fill(c64::ZERO);
        for (slot, &c) in self.g_slot.iter().zip(coeffs) {
            buf[*slot] = c;
        }
        self.fft.inverse_with(buf, ws);
        // inverse = (1/N)·Σ; we need (1/√Ω)·Σ → scale by N/√Ω.
        let scale = self.grid.len() as f64 / self.grid.volume().sqrt();
        for v in buf.iter_mut() {
            *v = v.scale(scale);
        }
    }

    /// Analyzes a grid function back into planewave coefficients: the exact
    /// left inverse of [`PwBasis::wave_to_grid`] (and the adjoint up to the
    /// `dv` metric, used to project `V·ψ` onto the basis).
    ///
    /// Convenience wrapper over [`PwBasis::grid_to_wave_with`] backed by
    /// the basis workspace pool.
    pub fn grid_to_wave(&self, buf: &mut [c64], coeffs: &mut [c64]) {
        let mut ws = self.take_fft_workspace();
        self.grid_to_wave_with(buf, coeffs, &mut ws);
        self.return_fft_workspace(ws);
    }

    /// [`PwBasis::grid_to_wave`] through caller-provided FFT scratch —
    /// the allocation-free hot-path entry point.
    pub fn grid_to_wave_with(&self, buf: &mut [c64], coeffs: &mut [c64], ws: &mut Fft3Workspace) {
        assert_eq!(coeffs.len(), self.len(), "grid_to_wave: coefficient count");
        assert_eq!(buf.len(), self.grid.len(), "grid_to_wave: buffer size");
        self.fft.forward_with(buf, ws);
        // forward = Σ_j …; c_G = (√Ω/N)·forward.
        let scale = self.grid.volume().sqrt() / self.grid.len() as f64;
        for (c, slot) in coeffs.iter_mut().zip(&self.g_slot) {
            *c = buf[*slot].scale(scale);
        }
    }

    /// Structure-factor-weighted assembly of a periodic lattice function:
    /// given per-atom form factors `f_a(|G|)` (Hartree·Bohr³) and positions,
    /// fills `out_g` (grid-sized, reciprocal layout) with
    /// `F(G) = (1/Ω)·Σ_a f_a(|G|)·e^{−iG·R_a}` over **all** grid G-vectors
    /// (not just those inside the wavefunction cutoff, since potentials
    /// live on the denser grid).
    pub fn lattice_sum<F: Fn(usize, f64) -> f64>(
        &self,
        positions: &[[f64; 3]],
        form: F,
        out_g: &mut [c64],
    ) {
        assert_eq!(out_g.len(), self.grid.len());
        let inv_vol = 1.0 / self.grid.volume();
        for (idx, v) in out_g.iter_mut().enumerate() {
            let (ix, iy, iz) = self.grid.coords(idx);
            *v = self.lattice_sum_point(ix, iy, iz, positions, &form, inv_vol);
        }
    }

    /// Packed-half counterpart of [`PwBasis::lattice_sum`]: real form
    /// factors make `F(−G) = conj(F(G))`, so a real-field synthesis only
    /// needs the non-redundant x half. Fills `out_g` in the
    /// `ls3df_fft::Fft3r` packed layout (`ix` in `0..n1/2+1`, x fastest)
    /// — roughly half the structure-factor work of the full sweep.
    ///
    /// Nyquist caveat: for even `n2`/`n3`, a bin on a y/z Nyquist plane
    /// and its negation share the *same-sign* Nyquist frequency, so the
    /// true `F` there is not exactly `conj` of the kept bin (the phase
    /// `e^{−iG_Nyq·R}` does not conjugate). The two planewaves alias to
    /// conjugate exponentials on the grid, so storing the Hermitian
    /// average `(F(G) + conj(F(−G)))/2` reproduces the complex path's
    /// real-part projection exactly. Only those planes pay the second
    /// structure-factor evaluation.
    pub fn lattice_sum_packed<F: Fn(usize, f64) -> f64>(
        &self,
        positions: &[[f64; 3]],
        form: F,
        out_g: &mut [c64],
    ) {
        let [n1, n2, n3] = self.grid.dims;
        let h1 = n1 / 2 + 1;
        assert_eq!(out_g.len(), h1 * n2 * n3, "lattice_sum_packed: length");
        let inv_vol = 1.0 / self.grid.volume();
        // x-edge bins (ix = 0, and n1/2 for even n1) keep both members
        // of each ± pair in the packed array, so only interior ix bins
        // on a y/z Nyquist plane need the symmetrized average.
        let x_edge = |ix: usize| ix == 0 || (n1 % 2 == 0 && ix == n1 / 2);
        let mut v = out_g.iter_mut();
        for iz in 0..n3 {
            for iy in 0..n2 {
                let nyq_plane = (n2 % 2 == 0 && iy == n2 / 2) || (n3 % 2 == 0 && iz == n3 / 2);
                for ix in 0..h1 {
                    let mut val = self.lattice_sum_point(ix, iy, iz, positions, &form, inv_vol);
                    if nyq_plane && !x_edge(ix) {
                        let mirror = self.lattice_sum_point(
                            n1 - ix,
                            (n2 - iy) % n2,
                            (n3 - iz) % n3,
                            positions,
                            &form,
                            inv_vol,
                        );
                        val = (val + mirror.conj()).scale(0.5);
                    }
                    *v.next().expect("length asserted above") = val;
                }
            }
        }
    }

    /// One structure-factor-weighted reciprocal-space point (shared by the
    /// full and packed sweeps so both produce bit-identical values).
    #[inline]
    fn lattice_sum_point<F: Fn(usize, f64) -> f64>(
        &self,
        ix: usize,
        iy: usize,
        iz: usize,
        positions: &[[f64; 3]],
        form: &F,
        inv_vol: f64,
    ) -> c64 {
        let g = self.grid.g_vector(ix, iy, iz);
        let q = (g[0] * g[0] + g[1] * g[1] + g[2] * g[2]).sqrt();
        let mut acc = c64::ZERO;
        for (a, r) in positions.iter().enumerate() {
            let phase = -(g[0] * r[0] + g[1] * r[1] + g[2] * r[2]);
            acc = acc.mul_add(c64::real(form(a, q)), c64::cis(phase));
        }
        acc.scale(inv_vol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basis() -> PwBasis {
        PwBasis::new(Grid3::cubic(12, 10.0), 2.0)
    }

    #[test]
    fn g0_present_and_counted() {
        let b = basis();
        assert!(b.len() > 1);
        assert_eq!(b.g2()[b.g0_index()], 0.0);
        // All |G|²/2 within cutoff.
        for &g2 in b.g2() {
            assert!(0.5 * g2 <= b.ecut() + 1e-12);
        }
    }

    #[test]
    fn basis_size_close_to_sphere_volume_estimate() {
        // npw ≈ Ω·G_max³/(6π²)
        let b = PwBasis::new(Grid3::cubic(20, 12.0), 3.0);
        let gmax = (2.0_f64 * 3.0).sqrt();
        let estimate = b.grid().volume() * gmax.powi(3) / (6.0 * std::f64::consts::PI.powi(2));
        let ratio = b.len() as f64 / estimate;
        assert!(
            (0.8..1.2).contains(&ratio),
            "npw = {}, estimate = {estimate}",
            b.len()
        );
    }

    #[test]
    fn wave_grid_roundtrip_exact() {
        let b = basis();
        let mut coeffs: Vec<c64> = (0..b.len())
            .map(|i| c64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let norm: f64 = coeffs.iter().map(|c| c.norm_sqr()).sum::<f64>().sqrt();
        for c in &mut coeffs {
            *c = c.scale(1.0 / norm);
        }
        let mut buf = vec![c64::ZERO; b.grid().len()];
        b.wave_to_grid(&coeffs, &mut buf);
        // Normalization on the grid.
        let total: f64 = buf.iter().map(|v| v.norm_sqr()).sum::<f64>() * b.grid().dv();
        assert!((total - 1.0).abs() < 1e-10, "grid norm = {total}");
        // Roundtrip.
        let mut back = vec![c64::ZERO; b.len()];
        b.grid_to_wave(&mut buf, &mut back);
        for (a, c) in back.iter().zip(&coeffs) {
            assert!((*a - *c).abs() < 1e-10);
        }
    }

    #[test]
    fn g0_coefficient_is_average() {
        let b = basis();
        let mut coeffs = vec![c64::ZERO; b.len()];
        coeffs[b.g0_index()] = c64::ONE;
        let mut buf = vec![c64::ZERO; b.grid().len()];
        b.wave_to_grid(&coeffs, &mut buf);
        // G=0 planewave is the constant 1/√Ω.
        let expect = 1.0 / b.grid().volume().sqrt();
        for v in &buf {
            assert!((*v - c64::real(expect)).abs() < 1e-12);
        }
    }

    #[test]
    fn lattice_sum_single_atom_at_origin_is_real() {
        let b = basis();
        let mut out = vec![c64::ZERO; b.grid().len()];
        b.lattice_sum(&[[0.0, 0.0, 0.0]], |_, q| (-q * q).exp(), &mut out);
        for v in &out {
            assert!(v.im.abs() < 1e-12);
        }
        // G=0 term = f(0)/Ω.
        assert!((out[0].re - 1.0 / b.grid().volume()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot represent")]
    fn coarse_grid_rejected() {
        // 4 points over 10 Bohr: Nyquist = π·4/10 ≈ 1.26 < G_max = 2.
        let _ = PwBasis::new(Grid3::cubic(4, 10.0), 2.0);
    }
}
