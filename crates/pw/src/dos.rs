//! Density of states (DOS) from discrete eigenvalues.
//!
//! Reporting tool for the science results: the paper's Fig. 7 discussion
//! revolves around the *width* of the oxygen-induced band (≈0.7 eV) and
//! its separation from the ZnTe CBM (≈0.2 eV); a Gaussian-broadened DOS
//! over the FSM/band-structure eigenvalues makes both quantities readable
//! from a single curve.

/// Gaussian-broadened density of states sampled on a uniform energy mesh.
#[derive(Clone, Debug)]
pub struct Dos {
    /// Energy mesh (Hartree).
    pub energies: Vec<f64>,
    /// DOS values (states/Hartree; weights as provided).
    pub values: Vec<f64>,
}

/// Builds the DOS of weighted levels on `[e_min, e_max]` with `n_points`
/// and Gaussian broadening `sigma`.
pub fn dos(levels: &[(f64, f64)], e_min: f64, e_max: f64, n_points: usize, sigma: f64) -> Dos {
    assert!(n_points >= 2, "dos: need at least two mesh points");
    assert!(sigma > 0.0, "dos: broadening must be positive");
    assert!(e_max > e_min, "dos: empty energy window");
    let de = (e_max - e_min) / (n_points - 1) as f64;
    let norm = 1.0 / (sigma * (2.0 * std::f64::consts::PI).sqrt());
    let energies: Vec<f64> = (0..n_points).map(|i| e_min + i as f64 * de).collect();
    let values = energies
        .iter()
        .map(|&e| {
            levels
                .iter()
                .map(|&(e_l, w)| {
                    let x = (e - e_l) / sigma;
                    w * norm * (-0.5 * x * x).exp()
                })
                .sum()
        })
        .collect();
    Dos { energies, values }
}

impl Dos {
    /// Integrated DOS over the window (≈ total weight inside it).
    pub fn integral(&self) -> f64 {
        if self.energies.len() < 2 {
            return 0.0;
        }
        let de = self.energies[1] - self.energies[0];
        self.values.iter().sum::<f64>() * de
    }

    /// Energy of the highest DOS peak (NaN for an empty window).
    pub fn peak(&self) -> f64 {
        let i = self
            .values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(i, _)| i);
        self.energies.get(i).copied().unwrap_or(f64::NAN)
    }

    /// Full width of the region where the DOS exceeds `fraction` of its
    /// peak value — the "band width" metric for the O-induced band.
    pub fn band_width(&self, fraction: f64) -> f64 {
        let peak = self.values.iter().cloned().fold(0.0, f64::max);
        let thr = fraction * peak;
        let first = self.values.iter().position(|&v| v >= thr);
        let last = self.values.iter().rposition(|&v| v >= thr);
        match (first, last) {
            (Some(a), Some(b)) if b > a => self.energies[b] - self.energies[a],
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_level_integrates_to_its_weight() {
        let d = dos(&[(0.0, 2.0)], -1.0, 1.0, 801, 0.05);
        assert!((d.integral() - 2.0).abs() < 1e-3, "∫DOS = {}", d.integral());
        assert!(d.peak().abs() < 0.01);
    }

    #[test]
    fn two_bands_resolved_when_separated() {
        let levels: Vec<(f64, f64)> = vec![(-0.5, 1.0), (-0.48, 1.0), (0.5, 1.0), (0.52, 1.0)];
        let d = dos(&levels, -1.0, 1.0, 2001, 0.02);
        // A deep valley between the two bands.
        let mid = d.energies.iter().position(|&e| e >= 0.0).unwrap();
        let peak = d.values.iter().cloned().fold(0.0, f64::max);
        assert!(d.values[mid] < 0.05 * peak);
    }

    #[test]
    fn band_width_tracks_level_spread() {
        let narrow = dos(&[(0.0, 1.0), (0.01, 1.0)], -0.5, 0.5, 1001, 0.01);
        let wide = dos(&[(-0.2, 1.0), (0.2, 1.0)], -0.5, 0.5, 1001, 0.01);
        assert!(wide.band_width(0.1) > narrow.band_width(0.1) + 0.2);
    }

    #[test]
    #[should_panic(expected = "broadening")]
    fn zero_sigma_rejected() {
        let _ = dos(&[(0.0, 1.0)], -1.0, 1.0, 11, 0.0);
    }
}
