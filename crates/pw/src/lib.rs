//! # ls3df-pw
//!
//! A complete planewave Kohn–Sham LDA solver written from scratch — the
//! reproduction's stand-in for PEtot (and, as the direct O(N³) baseline,
//! for PARATEC/VASP in the paper's §VI comparisons).
//!
//! Pieces: planewave [`PwBasis`] with the Γ-point conventions, LDA-PZ81
//! exchange-correlation ([`xc`]), FFT Poisson ([`hartree`], the GENPOT
//! kernel), Ewald ion–ion energy ([`ewald`]), Kleinman–Bylander nonlocal
//! projectors and block Hamiltonian ([`hamiltonian`]), all-band and
//! band-by-band preconditioned CG eigensolvers ([`solver`] — the paper's
//! BLAS-3 vs BLAS-2 ablation), potential mixing ([`mixing`]) and the SCF
//! driver ([`scf`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod basis;
pub mod davidson;
pub mod density;
pub mod dos;
pub mod ewald;
pub mod fd_reference;
pub mod forces;
pub mod hamiltonian;
pub mod hartree;
pub mod kpoints;
pub mod mixing;
pub mod potential;
pub mod realspace_nl;
pub mod scf;
pub mod solver;
pub mod xc;

pub use basis::PwBasis;
pub use davidson::solve_davidson;
pub use dos::{dos, Dos};
pub use fd_reference::{apply_fd, fd_ground_state};
pub use forces::{ewald_forces, local_forces, nonlocal_forces, total_forces};
pub use hamiltonian::{HamWorkspace, Hamiltonian, NonlocalPotential};
pub use hartree::HartreeSolver;
pub use kpoints::{band_structure, gap_from_bands, monkhorst_pack, scf_kpoints, KPoint};
pub use mixing::{Mixer, MixerState};
pub use potential::{
    effective_potential, effective_potential_with, initial_density, ionic_potential,
    ionic_potential_with, PwAtom,
};
pub use realspace_nl::{apply_block_realspace, RealSpaceNonlocal};
pub use scf::{grid_for, scf, DftSystem, ScfOptions, ScfResult, ScfStep, SolverMethod};
pub use solver::{
    cg_init, cg_residual, cg_step, solve_all_band, solve_all_band_with, solve_band_by_band,
    try_solve_all_band, try_solve_all_band_with, try_solve_band_by_band, CgWorkspace, SolveStats,
    SolverError, SolverOptions,
};
