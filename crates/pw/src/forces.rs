//! Hellmann–Feynman forces.
//!
//! Paper §V: "the LS3DF method can be used to calculate the force and
//! relax the atomic position", and its accuracy validation includes
//! "the atomic forces differed by 10⁻⁵ a.u." against direct DFT. The
//! force on atom `a` has three pieces:
//!
//! * **local**: `F = i·Σ_G G·v_a(|G|)·e^{−iG·R_a}·conj(ρ̃(G))` — the
//!   electrostatic pull of the electron density on the local
//!   pseudopotential (assembled in reciprocal space like the potential);
//! * **nonlocal**: derivative of the Kleinman–Bylander projector phases,
//!   `∂β_a/∂R_a = −iG·β_a`;
//! * **ion–ion**: the Ewald force (real + reciprocal parts).

use crate::potential::PwAtom;
use crate::PwBasis;
use ls3df_grid::RealField;
use ls3df_math::vec_ops::dotc;
use ls3df_math::{c64, Matrix};
use ls3df_pseudo::erf;
use std::f64::consts::PI;

/// Local-pseudopotential force on every atom from the charge density.
pub fn local_forces(basis: &PwBasis, atoms: &[PwAtom], rho: &RealField) -> Vec<[f64; 3]> {
    let grid = basis.grid();
    assert_eq!(rho.grid(), grid, "local_forces: grid mismatch");
    // ρ̃(G) = (1/Ω)·∫ρ·e^{−iG·r}d³r = (dv/Ω)·FFT_forward(ρ) = FFT/N.
    let mut rho_g: Vec<c64> = rho.as_slice().iter().map(|&v| c64::real(v)).collect();
    basis.fft().forward(&mut rho_g);
    let inv_n = 1.0 / grid.len() as f64;

    let mut forces = vec![[0.0_f64; 3]; atoms.len()];
    for (idx, rg) in rho_g.iter().enumerate() {
        let (ix, iy, iz) = grid.coords(idx);
        let g = grid.g_vector(ix, iy, iz);
        let q2 = g[0] * g[0] + g[1] * g[1] + g[2] * g[2];
        if q2 == 0.0 {
            continue;
        }
        let q = q2.sqrt();
        let rho_conj = rg.scale(inv_n).conj();
        for (a, atom) in atoms.iter().enumerate() {
            let v = atom.local.fourier(q);
            if v == 0.0 {
                continue;
            }
            let phase = -(g[0] * atom.pos[0] + g[1] * atom.pos[1] + g[2] * atom.pos[2]);
            // i·G·v·e^{−iG·R}·conj(ρ̃): take the real part (±G pairing).
            let w = (c64::I * c64::cis(phase) * rho_conj).scale(v);
            forces[a][0] += w.re * g[0];
            forces[a][1] += w.re * g[1];
            forces[a][2] += w.re * g[2];
        }
    }
    forces
}

/// Nonlocal (Kleinman–Bylander) force on every atom from the occupied
/// wavefunctions: `F_a = −2·E_a·Σ_b f_b·Re[⟨ψ_b|β_a⟩·⟨∂_R β_a|ψ_b⟩]`.
pub fn nonlocal_forces(
    basis: &PwBasis,
    atoms: &[PwAtom],
    psi: &Matrix<c64>,
    occupations: &[f64],
) -> Vec<[f64; 3]> {
    let npw = basis.len();
    assert_eq!(psi.cols(), npw);
    let mut forces = vec![[0.0_f64; 3]; atoms.len()];
    // Per-atom projector row (normalized) and its gradient rows.
    let mut beta = vec![c64::ZERO; npw];
    let mut grad = [
        vec![c64::ZERO; npw],
        vec![c64::ZERO; npw],
        vec![c64::ZERO; npw],
    ];
    for (a, atom) in atoms.iter().enumerate() {
        if atom.kb_energy == 0.0 {
            continue;
        }
        let mut norm2 = 0.0;
        for (i, (g, &g2)) in basis.g_vectors().iter().zip(basis.g2()).enumerate() {
            let q = g2.sqrt();
            let radial = (-q * q * atom.kb_rb * atom.kb_rb / 2.0).exp();
            let phase = -(g[0] * atom.pos[0] + g[1] * atom.pos[1] + g[2] * atom.pos[2]);
            let b = c64::cis(phase).scale(radial);
            beta[i] = b;
            // ∂/∂R e^{−iG·R} = −iG e^{−iG·R}.
            for d in 0..3 {
                grad[d][i] = -(c64::I * b).scale(g[d]);
            }
            norm2 += radial * radial;
        }
        let inv = 1.0 / norm2.sqrt().max(1e-300);
        for i in 0..npw {
            beta[i] = beta[i].scale(inv);
            for d in 0..3 {
                grad[d][i] = grad[d][i].scale(inv);
            }
        }
        for b in 0..psi.rows() {
            let f = occupations[b];
            if f == 0.0 {
                continue;
            }
            let overlap = dotc(&beta, psi.row(b)); // ⟨β|ψ⟩
            for d in 0..3 {
                let dover = dotc(&grad[d], psi.row(b)); // ⟨∂β|ψ⟩
                                                        // F = −f·E·d/dR |⟨β|ψ⟩|² = −2·f·E·Re[conj(⟨β|ψ⟩)·⟨∂β|ψ⟩]
                forces[a][d] -= 2.0 * f * atom.kb_energy * (overlap.conj() * dover).re;
            }
        }
    }
    forces
}

/// Ewald (ion–ion) forces for point charges in the periodic cell.
pub fn ewald_forces(pos: &[[f64; 3]], q: &[f64], lengths: [f64; 3]) -> Vec<[f64; 3]> {
    assert_eq!(pos.len(), q.len());
    let n = pos.len();
    let mut forces = vec![[0.0_f64; 3]; n];
    if n == 0 {
        return forces;
    }
    let volume = lengths[0] * lengths[1] * lengths[2];
    let lmin = lengths.iter().cloned().fold(f64::INFINITY, f64::min);
    let eta = (2.6 / lmin * (n as f64).powf(1.0 / 6.0).max(1.0)).max(4.0 / lmin);
    let r_cut = 7.0 / eta;
    let images: [i64; 3] = std::array::from_fn(|k| (r_cut / lengths[k]).ceil() as i64);

    // Real-space part: F_i += q_i·q_j·[erfc(ηr)/r² + 2η/√π·e^{−η²r²}/r]·r̂.
    for i in 0..n {
        for j in 0..n {
            for lx in -images[0]..=images[0] {
                for ly in -images[1]..=images[1] {
                    for lz in -images[2]..=images[2] {
                        if i == j && lx == 0 && ly == 0 && lz == 0 {
                            continue;
                        }
                        let d = [
                            pos[i][0] - pos[j][0] + lx as f64 * lengths[0],
                            pos[i][1] - pos[j][1] + ly as f64 * lengths[1],
                            pos[i][2] - pos[j][2] + lz as f64 * lengths[2],
                        ];
                        let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                        let r = r2.sqrt();
                        if r > r_cut {
                            continue;
                        }
                        let erfc = 1.0 - erf(eta * r);
                        let coef = q[i]
                            * q[j]
                            * (erfc / r2 + 2.0 * eta / PI.sqrt() * (-eta * eta * r2).exp() / r)
                            / r;
                        for c in 0..3 {
                            forces[i][c] += coef * d[c];
                        }
                    }
                }
            }
        }
    }

    // Reciprocal part: F_i += (4π/Ω)·q_i·Σ_G (G/G²)·e^{−G²/4η²}·Im[e^{iG·r_i}·conj(S(G))].
    let g_cut = 2.0 * eta * (-(1e-12_f64).ln()).sqrt();
    let g_n: [i64; 3] = std::array::from_fn(|k| (g_cut * lengths[k] / (2.0 * PI)).ceil() as i64);
    for mx in -g_n[0]..=g_n[0] {
        for my in -g_n[1]..=g_n[1] {
            for mz in -g_n[2]..=g_n[2] {
                if mx == 0 && my == 0 && mz == 0 {
                    continue;
                }
                let g = [
                    2.0 * PI * mx as f64 / lengths[0],
                    2.0 * PI * my as f64 / lengths[1],
                    2.0 * PI * mz as f64 / lengths[2],
                ];
                let g2 = g[0] * g[0] + g[1] * g[1] + g[2] * g[2];
                if g2 > g_cut * g_cut {
                    continue;
                }
                let damp = (-g2 / (4.0 * eta * eta)).exp() / g2;
                let (mut s_re, mut s_im) = (0.0, 0.0);
                for (r, &qi) in pos.iter().zip(q) {
                    let phase = g[0] * r[0] + g[1] * r[1] + g[2] * r[2];
                    s_re += qi * phase.cos();
                    s_im += qi * phase.sin();
                }
                for i in 0..n {
                    let phase = g[0] * pos[i][0] + g[1] * pos[i][1] + g[2] * pos[i][2];
                    // Im[e^{iφ}·conj(S)] = sinφ·s_re − cosφ·s_im.
                    let im = phase.sin() * s_re - phase.cos() * s_im;
                    let coef = 4.0 * PI / volume * q[i] * damp * im;
                    for c in 0..3 {
                        forces[i][c] += coef * g[c];
                    }
                }
            }
        }
    }
    forces
}

/// Total Hellmann–Feynman forces (local + nonlocal + Ewald) for a
/// converged state.
pub fn total_forces(
    basis: &PwBasis,
    atoms: &[PwAtom],
    rho: &RealField,
    psi: &Matrix<c64>,
    occupations: &[f64],
) -> Vec<[f64; 3]> {
    let mut f = local_forces(basis, atoms, rho);
    let f_nl = nonlocal_forces(basis, atoms, psi, occupations);
    let pos: Vec<[f64; 3]> = atoms.iter().map(|a| a.pos).collect();
    let q: Vec<f64> = atoms.iter().map(|a| a.local.z).collect();
    let f_ew = ewald_forces(&pos, &q, basis.grid().lengths);
    for i in 0..f.len() {
        for c in 0..3 {
            f[i][c] += f_nl[i][c] + f_ew[i][c];
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::potential::{initial_density, ionic_potential};
    use ls3df_grid::Grid3;
    use ls3df_pseudo::LocalPotential;

    fn atoms2(shift: f64) -> Vec<PwAtom> {
        vec![
            PwAtom {
                pos: [2.0 + shift, 3.0, 3.0],
                local: LocalPotential {
                    z: 2.0,
                    rc: 0.9,
                    a: 0.5,
                    w: 1.0,
                },
                kb_rb: 1.0,
                kb_energy: 0.8,
            },
            PwAtom {
                pos: [5.0, 3.5, 3.0],
                local: LocalPotential {
                    z: 4.0,
                    rc: 1.1,
                    a: 1.0,
                    w: 0.9,
                },
                kb_rb: 1.1,
                kb_energy: -0.4,
            },
        ]
    }

    #[test]
    fn local_force_matches_finite_difference_of_energy() {
        // E_loc(R) = ∫ρ·V_ion(R) with ρ fixed; F = −dE/dR.
        let grid = Grid3::cubic(14, 7.0);
        let basis = PwBasis::new(grid.clone(), 2.0);
        let rho = initial_density(&basis, &atoms2(0.3), 1.2);
        let e_at = |shift: f64| {
            let v = ionic_potential(&basis, &atoms2(shift));
            v.as_slice()
                .iter()
                .zip(rho.as_slice())
                .map(|(&a, &b)| a * b)
                .sum::<f64>()
                * grid.dv()
        };
        let f = local_forces(&basis, &atoms2(0.0), &rho);
        let h = 1e-4;
        let fd = -(e_at(h) - e_at(-h)) / (2.0 * h);
        assert!(
            (f[0][0] - fd).abs() < 1e-6 * (1.0 + fd.abs()),
            "analytic {} vs finite-difference {}",
            f[0][0],
            fd
        );
    }

    #[test]
    fn ewald_forces_sum_to_zero_and_match_finite_difference() {
        let lengths = [6.0, 7.0, 8.0];
        let pos = [[1.0, 2.0, 3.0], [4.0, 5.0, 1.0], [2.5, 0.5, 6.0]];
        let q = [2.0, -3.0, 1.0];
        let f = ewald_forces(&pos, &q, lengths);
        // Momentum conservation.
        for c in 0..3 {
            let total: f64 = f.iter().map(|v| v[c]).sum();
            assert!(total.abs() < 1e-8, "ΣF[{c}] = {total}");
        }
        // Finite difference on atom 0, x direction.
        let h = 1e-5;
        let mut pp = pos;
        pp[0][0] += h;
        let ep = crate::ewald::ewald_energy(&pp, &q, lengths);
        pp[0][0] -= 2.0 * h;
        let em = crate::ewald::ewald_energy(&pp, &q, lengths);
        let fd = -(ep - em) / (2.0 * h);
        assert!(
            (f[0][0] - fd).abs() < 1e-5 * (1.0 + fd.abs()),
            "Ewald force {} vs fd {}",
            f[0][0],
            fd
        );
    }

    #[test]
    fn symmetric_dimer_forces_are_opposite() {
        // Two identical atoms: forces equal and opposite along the bond.
        let grid = Grid3::cubic(14, 8.0);
        let basis = PwBasis::new(grid.clone(), 1.8);
        let atoms = vec![
            PwAtom {
                pos: [3.0, 4.0, 4.0],
                local: LocalPotential {
                    z: 2.0,
                    rc: 0.9,
                    a: 0.0,
                    w: 1.0,
                },
                kb_rb: 1.0,
                kb_energy: 0.0,
            },
            PwAtom {
                pos: [5.0, 4.0, 4.0],
                local: LocalPotential {
                    z: 2.0,
                    rc: 0.9,
                    a: 0.0,
                    w: 1.0,
                },
                kb_rb: 1.0,
                kb_energy: 0.0,
            },
        ];
        let rho = initial_density(&basis, &atoms, 1.3);
        let f = local_forces(&basis, &atoms, &rho);
        assert!(
            (f[0][0] + f[1][0]).abs() < 1e-9,
            "{} vs {}",
            f[0][0],
            f[1][0]
        );
        assert!(f[0][1].abs() < 1e-9 && f[0][2].abs() < 1e-9);
    }

    #[test]
    fn scf_forces_vanish_at_symmetric_site_and_balance() {
        // Full SCF on a dimer: total forces must be equal/opposite, and a
        // centred single atom must feel zero force.
        let grid = Grid3::cubic(12, 8.0);
        let sys = crate::DftSystem {
            grid: grid.clone(),
            ecut: 1.4,
            atoms: vec![PwAtom {
                pos: [4.0, 4.0, 4.0],
                local: LocalPotential {
                    z: 2.0,
                    rc: 0.9,
                    a: 0.0,
                    w: 1.0,
                },
                kb_rb: 1.0,
                kb_energy: 0.5,
            }],
        };
        let res = crate::scf(
            &sys,
            &crate::ScfOptions {
                max_scf: 60,
                tol: 1e-4,
                n_extra_bands: 2,
                ..Default::default()
            },
        );
        assert!(
            res.converged,
            "last ΔV = {:?}",
            res.history.last().map(|h| h.dv_integral)
        );
        let basis = PwBasis::new(grid, sys.ecut);
        let f = total_forces(&basis, &sys.atoms, &res.rho, &res.psi, &res.occupations);
        for c in 0..3 {
            assert!(
                f[0][c].abs() < 1e-3,
                "residual force component {c}: {}",
                f[0][c]
            );
        }
    }

    #[test]
    fn nonlocal_force_matches_finite_difference() {
        // E_NL(R) = Σ_b f_b·E·|⟨β(R)|ψ_b⟩|² with ψ fixed; F = −dE/dR.
        let grid = Grid3::cubic(12, 7.0);
        let basis = PwBasis::new(grid, 1.6);
        let mk = |shift: f64| {
            vec![PwAtom {
                pos: [3.0 + shift, 3.5, 3.5],
                local: LocalPotential {
                    z: 2.0,
                    rc: 0.9,
                    a: 0.0,
                    w: 1.0,
                },
                kb_rb: 1.0,
                kb_energy: 0.9,
            }]
        };
        let mut psi = crate::scf::random_start(3, &basis, 4);
        ls3df_math::ortho::cholesky_orthonormalize(&mut psi, 1.0).unwrap();
        let occ = vec![2.0, 2.0, 0.0];
        let e_at = |shift: f64| {
            let atoms = mk(shift);
            let positions: Vec<[f64; 3]> = atoms.iter().map(|a| a.pos).collect();
            let nl = crate::NonlocalPotential::new(
                &basis,
                &positions,
                |_, q| (-q * q / 2.0).exp(),
                &[0.9],
            );
            nl.energy(&psi, &occ)
        };
        let f = nonlocal_forces(&basis, &mk(0.0), &psi, &occ);
        let h = 1e-5;
        let fd = -(e_at(h) - e_at(-h)) / (2.0 * h);
        assert!(
            (f[0][0] - fd).abs() < 1e-5 * (1.0 + fd.abs()),
            "nonlocal force {} vs fd {}",
            f[0][0],
            fd
        );
    }
}
