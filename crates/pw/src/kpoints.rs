//! Brillouin-zone sampling: Monkhorst–Pack grids and band structures.
//!
//! The paper's comparisons are "for a single k-point calculation" (Γ), and
//! LS3DF fragments are inherently Γ-only — but the direct-code baseline
//! benefits from proper k-sampling, and k-points cleanly explain the
//! supercell-vs-Γ effects seen in the test suite (a doubled supercell at Γ
//! samples exactly the {Γ, X} set of the primitive cell: band folding).

use crate::hamiltonian::{Hamiltonian, NonlocalPotential};
use crate::potential::PwAtom;
use crate::solver::{solve_all_band, SolverOptions};
use crate::PwBasis;
use ls3df_grid::RealField;

/// One sampled k-point: Cartesian coordinates (Bohr⁻¹) + quadrature weight.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KPoint {
    /// Cartesian Bloch vector.
    pub k: [f64; 3],
    /// Normalized weight (Σ weights = 1).
    pub weight: f64,
}

/// Monkhorst–Pack grid `n1 × n2 × n3` for an orthorhombic cell of the
/// given lengths, folded by time-reversal symmetry (`k ↔ −k`).
pub fn monkhorst_pack(n: [usize; 3], lengths: [f64; 3]) -> Vec<KPoint> {
    assert!(
        n.iter().all(|&x| x >= 1),
        "monkhorst_pack: grid must be ≥ 1"
    );
    let two_pi = 2.0 * std::f64::consts::PI;
    // Fractional MP coordinates u_i = (2r − n − 1)/(2n), r = 1..n.
    let frac = |r: usize, nn: usize| (2.0 * r as f64 - nn as f64 - 1.0) / (2.0 * nn as f64);
    let mut raw: Vec<[f64; 3]> = Vec::new();
    for r3 in 1..=n[2] {
        for r2 in 1..=n[1] {
            for r1 in 1..=n[0] {
                raw.push([
                    two_pi * frac(r1, n[0]) / lengths[0],
                    two_pi * frac(r2, n[1]) / lengths[1],
                    two_pi * frac(r3, n[2]) / lengths[2],
                ]);
            }
        }
    }
    // Fold k ↔ −k.
    let total = raw.len() as f64;
    let mut folded: Vec<KPoint> = Vec::new();
    'outer: for k in raw {
        for existing in folded.iter_mut() {
            let is_minus = (0..3).all(|d| (existing.k[d] + k[d]).abs() < 1e-12);
            let is_same = (0..3).all(|d| (existing.k[d] - k[d]).abs() < 1e-12);
            if is_minus || is_same {
                existing.weight += 1.0 / total;
                continue 'outer;
            }
        }
        folded.push(KPoint {
            k,
            weight: 1.0 / total,
        });
    }
    folded
}

/// Solves the band energies at each k-point in a fixed effective
/// potential. Returns one ascending eigenvalue vector per k.
pub fn band_structure(
    basis: &PwBasis,
    v_eff: &RealField,
    atoms: &[PwAtom],
    kpts: &[KPoint],
    n_bands: usize,
    opts: &SolverOptions,
) -> Vec<Vec<f64>> {
    let positions: Vec<[f64; 3]> = atoms.iter().map(|a| a.pos).collect();
    let widths: Vec<f64> = atoms.iter().map(|a| a.kb_rb).collect();
    let e_kb: Vec<f64> = atoms.iter().map(|a| a.kb_energy).collect();
    kpts.iter()
        .enumerate()
        .map(|(i, kp)| {
            // A fresh basis per k: the variational space is |k+G| ≤ G_max.
            let kbasis = PwBasis::new_at_k(basis.grid().clone(), basis.ecut(), kp.k);
            let nl = NonlocalPotential::new_at_k(
                &kbasis,
                &positions,
                |a, q| (-q * q * widths[a] * widths[a] / 2.0).exp(),
                &e_kb,
                kp.k,
            );
            let h = Hamiltonian::new_at_k(&kbasis, v_eff.clone(), &nl, kp.k);
            let mut psi = crate::scf::random_start(n_bands, &kbasis, 7070 + i as u64);
            let stats = solve_all_band(&h, &mut psi, opts);
            stats.eigenvalues
        })
        .collect()
}

/// k-weighted band-gap estimate: the minimum over k of the (HOMO, LUMO)
/// split with `n_occ` occupied bands (indirect gaps allowed: max valence
/// vs min conduction across the whole set).
pub fn gap_from_bands(bands: &[Vec<f64>], n_occ: usize) -> Option<f64> {
    let mut vbm = f64::NEG_INFINITY;
    let mut cbm = f64::INFINITY;
    for b in bands {
        if b.len() <= n_occ {
            return None;
        }
        vbm = vbm.max(b[n_occ - 1]);
        cbm = cbm.min(b[n_occ]);
    }
    Some(cbm - vbm)
}

/// Self-consistent field with Brillouin-zone sampling: the density is the
/// k-weighted sum `ρ(r) = Σ_k w_k·Σ_b f_b·|ψ_{bk}(r)|²`. The paper's
/// comparisons grant the direct codes "a single k-point calculation";
/// this extension makes the direct baseline exact for small cells.
pub fn scf_kpoints(
    system: &crate::DftSystem,
    kpts: &[KPoint],
    opts: &crate::ScfOptions,
) -> crate::ScfResult {
    use crate::density::compute_density;
    use crate::mixing::MixerState;
    use crate::potential::effective_potential;
    use ls3df_math::Matrix;

    assert!(!kpts.is_empty(), "scf_kpoints: need at least one k-point");
    let (basis, _, v_ion, rho0) = crate::scf::setup(system, opts.init_width);
    let n_occ = system.n_occupied();
    let n_bands = n_occ + opts.n_extra_bands;
    let occupations = crate::density::insulator_occupations(n_bands, system.n_electrons());
    let e_ii = system.ewald_energy();

    // Per-k bases, projectors and persistent wavefunctions.
    let positions: Vec<[f64; 3]> = system.atoms.iter().map(|a| a.pos).collect();
    let widths: Vec<f64> = system.atoms.iter().map(|a| a.kb_rb).collect();
    let e_kb: Vec<f64> = system.atoms.iter().map(|a| a.kb_energy).collect();
    let kbases: Vec<PwBasis> = kpts
        .iter()
        .map(|kp| PwBasis::new_at_k(system.grid.clone(), system.ecut, kp.k))
        .collect();
    let nls: Vec<NonlocalPotential> = kpts
        .iter()
        .zip(&kbases)
        .map(|(kp, kb)| {
            NonlocalPotential::new_at_k(
                kb,
                &positions,
                |a, q| (-q * q * widths[a] * widths[a] / 2.0).exp(),
                &e_kb,
                kp.k,
            )
        })
        .collect();
    let mut psis: Vec<Matrix<ls3df_math::c64>> = kbases
        .iter()
        .enumerate()
        .map(|(i, kb)| crate::scf::random_start(n_bands, kb, 4242 + i as u64))
        .collect();

    let (mut v_in, _) = effective_potential(&basis, &v_ion, &rho0);
    let mut mixer = MixerState::new(opts.mixer.clone());
    let mut history = Vec::new();
    let mut converged = false;
    let mut rho = rho0;
    let mut eigenvalues: Vec<f64> = Vec::new();

    for iteration in 1..=opts.max_scf {
        let mut worst = 0.0_f64;
        let mut rho_new = RealField::zeros(system.grid.clone());
        let mut band_energy = 0.0;
        for (i, kp) in kpts.iter().enumerate() {
            let h = Hamiltonian::new_at_k(&kbases[i], v_in.clone(), &nls[i], kp.k);
            let stats = solve_all_band(&h, &mut psis[i], &opts.solver);
            worst = worst.max(stats.residual);
            if i == 0 {
                eigenvalues = stats.eigenvalues.clone();
            }
            let rho_k = compute_density(&kbases[i], &psis[i], &occupations);
            rho_new.add_scaled(kp.weight, &rho_k);
            band_energy += kp.weight
                * stats
                    .eigenvalues
                    .iter()
                    .zip(&occupations)
                    .map(|(&e, &f)| f * e)
                    .sum::<f64>();
        }
        let (v_out, energies) = effective_potential(&basis, &v_ion, &rho_new);
        let vin_rho: f64 = v_in
            .as_slice()
            .iter()
            .zip(rho_new.as_slice())
            .map(|(&v, &r)| v * r)
            .sum::<f64>()
            * system.grid.dv();
        let total_energy =
            band_energy - vin_rho + energies.ion_rho + energies.hartree + energies.xc + e_ii;
        let dv_integral = v_out.diff(&v_in).integrate_abs();
        history.push(crate::ScfStep {
            iteration,
            dv_integral,
            total_energy,
            band_residual: worst,
        });
        rho = rho_new;
        if dv_integral < opts.tol {
            converged = true;
            v_in = v_out;
            break;
        }
        v_in = mixer.mix(&v_in, &v_out, basis.fft());
    }

    let total_energy = history.last().map(|s| s.total_energy).unwrap_or(0.0);
    crate::ScfResult {
        eigenvalues,
        psi: psis.swap_remove(0),
        rho,
        v_eff: v_in,
        total_energy,
        history,
        converged,
        occupations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls3df_grid::Grid3;
    use ls3df_pseudo::LocalPotential;

    #[test]
    fn mp_grid_weights_sum_to_one_and_fold() {
        for n in [[1usize, 1, 1], [2, 2, 2], [3, 2, 1], [4, 4, 4]] {
            let kpts = monkhorst_pack(n, [10.0, 12.0, 9.0]);
            let total: f64 = kpts.iter().map(|k| k.weight).sum();
            assert!((total - 1.0).abs() < 1e-12, "{n:?}: Σw = {total}");
            // Time-reversal folding: at most half the raw points (+1).
            let raw = n[0] * n[1] * n[2];
            assert!(kpts.len() <= raw / 2 + 1, "{n:?}: {} points", kpts.len());
        }
        // Γ-only grid.
        let g = monkhorst_pack([1, 1, 1], [5.0, 5.0, 5.0]);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].k, [0.0, 0.0, 0.0]);
    }

    #[test]
    fn free_electron_bands_at_k() {
        let l = 8.0;
        let grid = Grid3::cubic(10, l);
        let basis = PwBasis::new(grid.clone(), 1.2);
        let v = RealField::zeros(grid);
        let k = [std::f64::consts::PI / l, 0.0, 0.0]; // X/2 point
        let basis = PwBasis::new_at_k(basis.grid().clone(), 1.2, k);
        let nl = NonlocalPotential::none(&basis);
        let h = Hamiltonian::new_at_k(&basis, v, &nl, k);
        let mut psi = crate::scf::random_start(4, &basis, 1);
        let stats = solve_all_band(
            &h,
            &mut psi,
            &SolverOptions {
                max_iter: 200,
                tol: 1e-8,
                ..Default::default()
            },
        );
        assert!(stats.converged);
        // Exact: sorted ½|k+G|².
        let mut exact: Vec<f64> = basis
            .g_vectors()
            .iter()
            .map(|g| 0.5 * ((g[0] + k[0]).powi(2) + g[1] * g[1] + g[2] * g[2]))
            .collect();
        exact.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for b in 0..4 {
            assert!(
                (stats.eigenvalues[b] - exact[b]).abs() < 1e-6,
                "band {b}: {} vs {}",
                stats.eigenvalues[b],
                exact[b]
            );
        }
    }

    #[test]
    fn band_folding_supercell_gamma_equals_primitive_k_set() {
        // THE k-point consistency check: a 2× supercell at Γ contains
        // exactly the primitive cell's {Γ, X} eigenvalues.
        let a = 6.0;
        let prim_grid = Grid3::new([10, 10, 10], [a, a, a]);
        let prim_basis = PwBasis::new(prim_grid.clone(), 1.2);
        let v_prim = RealField::from_fn(prim_grid.clone(), |r| {
            -0.4 * ((2.0 * std::f64::consts::PI * r[0] / a).cos()
                + (2.0 * std::f64::consts::PI * r[1] / a).cos()
                + (2.0 * std::f64::consts::PI * r[2] / a).cos())
        });
        let atoms = vec![PwAtom {
            pos: [0.0, 0.0, 0.0],
            local: LocalPotential {
                z: 2.0,
                rc: 1.0,
                a: 0.0,
                w: 1.0,
            },
            kb_rb: 1.0,
            kb_energy: 0.0,
        }];
        let opts = SolverOptions {
            max_iter: 250,
            tol: 1e-8,
            ..Default::default()
        };
        // Solve a generous window at each primitive k so the union surely
        // contains the supercell's lowest levels (the 50/50 split is not
        // guaranteed).
        let nb = 7;
        // Primitive cell at Γ and at X = (π/a, 0, 0).
        let kx = std::f64::consts::PI / a;
        let bands = band_structure(
            &prim_basis,
            &v_prim,
            &atoms,
            &[
                KPoint {
                    k: [0.0; 3],
                    weight: 0.5,
                },
                KPoint {
                    k: [kx, 0.0, 0.0],
                    weight: 0.5,
                },
            ],
            nb,
            &opts,
        );
        // Doubled supercell (2a along x) at Γ with the periodically
        // repeated potential.
        let sup_grid = Grid3::new([20, 10, 10], [2.0 * a, a, a]);
        let sup_basis = PwBasis::new(sup_grid.clone(), 1.2);
        let v_sup = RealField::from_fn(sup_grid, |r| {
            -0.4 * ((2.0 * std::f64::consts::PI * r[0] / a).cos()
                + (2.0 * std::f64::consts::PI * r[1] / a).cos()
                + (2.0 * std::f64::consts::PI * r[2] / a).cos())
        });
        let nl = NonlocalPotential::none(&sup_basis);
        let h = Hamiltonian::new(&sup_basis, v_sup, &nl);
        // Solve extra bands so the compared window is not clipped inside a
        // degenerate multiplet (the folded spectrum is highly degenerate).
        let n_compare = 6;
        let mut psi = crate::scf::random_start(n_compare + 4, &sup_basis, 9);
        let sup = solve_all_band(
            &h,
            &mut psi,
            &SolverOptions {
                max_iter: 400,
                tol: 1e-7,
                ..Default::default()
            },
        );
        assert!(sup.residual < 1e-3, "supercell residual {}", sup.residual);

        // The union of the primitive Γ and X eigenvalues, sorted, must
        // equal the supercell Γ spectrum.
        let mut union: Vec<f64> = bands[0].iter().chain(bands[1].iter()).copied().collect();
        union.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for b in 0..n_compare {
            // Folding must hold to ~the solver residual level (the test is
            // about the level structure, not ultimate solver precision on
            // this highly degenerate spectrum).
            assert!(
                (sup.eigenvalues[b] - union[b]).abs() < 1e-3,
                "folded band {b}: supercell {} vs union {}",
                sup.eigenvalues[b],
                union[b]
            );
        }
    }

    #[test]
    fn kpoint_scf_at_gamma_matches_plain_scf() {
        // scf_kpoints with the Γ-only grid must reproduce the ordinary SCF.
        let grid = Grid3::cubic(10, 7.0);
        let sys = crate::DftSystem {
            grid: grid.clone(),
            ecut: 1.2,
            atoms: vec![PwAtom {
                pos: [3.5, 3.5, 3.5],
                local: LocalPotential {
                    z: 2.0,
                    rc: 0.9,
                    a: 0.0,
                    w: 1.0,
                },
                kb_rb: 1.0,
                kb_energy: 0.0,
            }],
        };
        let opts = crate::ScfOptions {
            max_scf: 40,
            tol: 1e-4,
            n_extra_bands: 2,
            ..Default::default()
        };
        let plain = crate::scf(&sys, &opts);
        let gamma = monkhorst_pack([1, 1, 1], sys.grid.lengths);
        let kp = scf_kpoints(&sys, &gamma, &opts);
        assert!(plain.converged && kp.converged);
        assert!(
            (plain.total_energy - kp.total_energy).abs() < 1e-6,
            "plain {} vs k-point {}",
            plain.total_energy,
            kp.total_energy
        );
    }

    #[test]
    fn gap_from_bands_indirect() {
        let bands = vec![
            vec![-1.0, 0.0, 1.0], // k1: VBM 0.0, CBM 1.0
            vec![-1.2, 0.3, 0.8], // k2: VBM 0.3, CBM 0.8
        ];
        // Indirect gap: max VBM (0.3) to min CBM (0.8) = 0.5.
        assert_eq!(gap_from_bands(&bands, 2), Some(0.5));
        assert_eq!(gap_from_bands(&bands, 3), None);
    }
}
