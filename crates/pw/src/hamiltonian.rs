//! The Kohn–Sham Hamiltonian `H = −½∇² + V_loc(r) + V_NL` applied to
//! planewave coefficient blocks.
//!
//! Wavefunction blocks are `(n_bands × n_pw)` matrices (one band per row).
//! The kinetic term is diagonal in G, the local potential is applied via
//! grid FFTs, and the nonlocal Kleinman–Bylander term is two GEMMs against
//! the projector block — exactly the BLAS-3 structure the paper's
//! optimization #1 created ("a typical matrix size for one of our
//! fragments would be 3000 × 200").

use crate::PwBasis;
use ls3df_fft::Fft3Workspace;
use ls3df_grid::RealField;
use ls3df_math::gemm::{self, Op};
use ls3df_math::vec_ops;
use ls3df_math::{c64, Matrix};

/// Assembled Kleinman–Bylander nonlocal potential for a set of atoms on a
/// given basis: `V_NL = Σ_a E_a·|β_a⟩⟨β_a|` with `⟨G|β_a⟩` normalized over
/// the basis.
pub struct NonlocalPotential {
    /// Projector coefficients, `(n_proj × n_pw)`.
    projectors: Matrix<c64>,
    /// KB energy per projector (Hartree).
    energies: Vec<f64>,
}

impl NonlocalPotential {
    /// Builds projectors for atoms at `positions` with per-atom radial form
    /// factors `form(atom, q)` and strengths `e_kb[atom]`. Atoms with zero
    /// strength are skipped.
    pub fn new<F: Fn(usize, f64) -> f64>(
        basis: &PwBasis,
        positions: &[[f64; 3]],
        form: F,
        e_kb: &[f64],
    ) -> Self {
        Self::new_at_k(basis, positions, form, e_kb, [0.0; 3])
    }

    /// [`NonlocalPotential::new`] at a Bloch vector `k`: the radial form is
    /// evaluated at `|k+G|` and the phase at `(k+G)·R` (standard Bloch
    /// Kleinman–Bylander projectors).
    pub fn new_at_k<F: Fn(usize, f64) -> f64>(
        basis: &PwBasis,
        positions: &[[f64; 3]],
        form: F,
        e_kb: &[f64],
        k: [f64; 3],
    ) -> Self {
        Self::new_batched_at_k(
            basis,
            positions,
            |a, qs, out| {
                for (o, &q) in out.iter_mut().zip(qs) {
                    *o = form(a, q);
                }
            },
            e_kb,
            k,
        )
    }

    /// Γ-point convenience wrapper over
    /// [`NonlocalPotential::new_batched_at_k`].
    pub fn new_batched<F: Fn(usize, &[f64], &mut [f64])>(
        basis: &PwBasis,
        positions: &[[f64; 3]],
        form_batch: F,
        e_kb: &[f64],
    ) -> Self {
        Self::new_batched_at_k(basis, positions, form_batch, e_kb, [0.0; 3])
    }

    /// [`NonlocalPotential::new_at_k`] with a *batched* radial form: the
    /// closure fills the form factor for a whole `|k+G|` list per atom
    /// (e.g. `KbProjector::fourier_batch`), letting the radial evaluation
    /// run as one tight vectorizable loop. The `|k+G|` magnitudes are
    /// hoisted out of the per-atom loop, so the npw square roots are paid
    /// once instead of once per atom.
    pub fn new_batched_at_k<F: Fn(usize, &[f64], &mut [f64])>(
        basis: &PwBasis,
        positions: &[[f64; 3]],
        form_batch: F,
        e_kb: &[f64],
        k: [f64; 3],
    ) -> Self {
        assert_eq!(positions.len(), e_kb.len());
        let active: Vec<usize> = (0..positions.len()).filter(|&a| e_kb[a] != 0.0).collect();
        let npw = basis.len();
        let mut projectors = Matrix::zeros(active.len(), npw);
        // alloc-audit: projector assembly — once per Hamiltonian geometry,
        // never inside the CG loop.
        let mut energies = Vec::with_capacity(active.len());
        let qs: Vec<f64> = basis
            .g_vectors()
            .iter()
            .map(|g| {
                let kg = [g[0] + k[0], g[1] + k[1], g[2] + k[2]];
                (kg[0] * kg[0] + kg[1] * kg[1] + kg[2] * kg[2]).sqrt()
            })
            .collect();
        // alloc-audit: per-geometry staging for the batched radial form
        // factors — reused across atoms, freed before the CG loop starts.
        let mut radial = vec![0.0_f64; npw];
        for (row, &a) in active.iter().enumerate() {
            let r_a = positions[a];
            let p = projectors.row_mut(row);
            form_batch(a, &qs, &mut radial);
            let mut norm2 = 0.0;
            for (i, g) in basis.g_vectors().iter().enumerate() {
                let kg = [g[0] + k[0], g[1] + k[1], g[2] + k[2]];
                let phase = -(kg[0] * r_a[0] + kg[1] * r_a[1] + kg[2] * r_a[2]);
                p[i] = c64::cis(phase).scale(radial[i]);
                norm2 += radial[i] * radial[i];
            }
            let inv = 1.0 / norm2.sqrt().max(1e-300);
            for v in p.iter_mut() {
                *v = v.scale(inv);
            }
            energies.push(e_kb[a]);
        }
        NonlocalPotential {
            projectors,
            energies,
        }
    }

    /// An empty nonlocal potential (local-only Hamiltonian).
    pub fn none(basis: &PwBasis) -> Self {
        NonlocalPotential {
            projectors: Matrix::zeros(0, basis.len()),
            energies: Vec::new(),
        }
    }

    /// Number of active projectors.
    pub fn len(&self) -> usize {
        self.energies.len()
    }

    /// True if no projectors are active.
    pub fn is_empty(&self) -> bool {
        self.energies.is_empty()
    }

    /// `hpsi += V_NL·psi` for a whole block (two GEMMs).
    pub fn accumulate_block(&self, psi: &Matrix<c64>, hpsi: &mut Matrix<c64>) {
        if self.is_empty() {
            return;
        }
        // B[b][p] = ⟨β_p|ψ_b⟩.
        let mut b = gemm::matmul_nh(psi, &self.projectors);
        // Scale columns by E_p.
        for row in 0..b.rows() {
            let r = b.row_mut(row);
            for (p, v) in r.iter_mut().enumerate() {
                *v = v.scale(self.energies[p]);
            }
        }
        // hpsi += B·proj.
        gemm::gemm(
            c64::ONE,
            &b,
            Op::None,
            &self.projectors,
            Op::None,
            c64::ONE,
            hpsi,
        );
    }

    /// `hpsi += V_NL·psi` for a single band, allocation-free: one
    /// `dotc`/`axpy` pair per projector, no intermediate matrix.
    pub fn accumulate_vec(&self, psi: &[c64], hpsi: &mut [c64]) {
        for (p, &e) in self.energies.iter().enumerate() {
            let beta = self.projectors.row(p);
            let coef = vec_ops::dotc(beta, psi).scale(e);
            vec_ops::axpy(coef, beta, hpsi);
        }
    }

    /// Nonlocal energy contribution `Σ_b f_b·Σ_p E_p·|⟨β_p|ψ_b⟩|²`.
    pub fn energy(&self, psi: &Matrix<c64>, occupations: &[f64]) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let b = gemm::matmul_nh(psi, &self.projectors);
        let mut e = 0.0;
        for band in 0..b.rows() {
            let mut acc = 0.0;
            for (p, v) in b.row(band).iter().enumerate() {
                acc += self.energies[p] * v.norm_sqr();
            }
            e += occupations[band] * acc;
        }
        e
    }
}

/// Reusable scratch for [`Hamiltonian`] applications: the real-space
/// buffer for the `V(r)·ψ(r)` product plus the FFT workspaces behind the
/// pair of grid transforms. One per thread (or band block); never shared
/// concurrently.
pub struct HamWorkspace {
    /// Real-space grid buffer (`ngrid` points).
    grid: Vec<c64>,
    /// Scratch for the forward/inverse 3-D transforms.
    fft: Fft3Workspace,
}

/// The Kohn–Sham Hamiltonian for one (fragment or global) problem.
///
/// Optionally carries a Bloch vector `k`: the operator is then
/// `H(k) = ½|−i∇ + k|² + V` acting on the periodic part of the Bloch
/// function (kinetic term `½|k+G|²`; the local potential is unchanged and
/// the nonlocal projectors must be built at the same `k` via
/// [`NonlocalPotential::new_at_k`]).
pub struct Hamiltonian<'a> {
    basis: &'a PwBasis,
    nonlocal: &'a NonlocalPotential,
    /// Effective local potential on the real-space grid (Hartree).
    pub v_local: RealField,
    /// Bloch vector (Cartesian, Bohr⁻¹); zero for Γ-point problems.
    k: [f64; 3],
    /// Cached `|k+G|²` per basis vector (equals `g2` at Γ).
    kg2: Vec<f64>,
}

impl<'a> Hamiltonian<'a> {
    /// Assembles the Hamiltonian from its parts. The local potential must
    /// live on the basis grid.
    pub fn new(basis: &'a PwBasis, v_local: RealField, nonlocal: &'a NonlocalPotential) -> Self {
        Self::new_at_k(basis, v_local, nonlocal, [0.0; 3])
    }

    /// Assembles `H(k)` at a Bloch vector `k` (Cartesian, Bohr⁻¹). Build
    /// the projectors with [`NonlocalPotential::new_at_k`] at the same `k`.
    pub fn new_at_k(
        basis: &'a PwBasis,
        v_local: RealField,
        nonlocal: &'a NonlocalPotential,
        k: [f64; 3],
    ) -> Self {
        assert_eq!(
            v_local.grid(),
            basis.grid(),
            "Hamiltonian: potential grid mismatch"
        );
        let kg2 = basis
            .g_vectors()
            .iter()
            .map(|g| (g[0] + k[0]).powi(2) + (g[1] + k[1]).powi(2) + (g[2] + k[2]).powi(2))
            .collect();
        Hamiltonian {
            basis,
            nonlocal,
            v_local,
            k,
            kg2,
        }
    }

    /// The Bloch vector this Hamiltonian is built at.
    pub fn k(&self) -> [f64; 3] {
        self.k
    }

    /// The basis this Hamiltonian acts on.
    pub fn basis(&self) -> &PwBasis {
        self.basis
    }

    /// Builds the reusable scratch one `H·ψ` application needs (grid
    /// buffer + FFT workspaces). Build once per thread / band block and
    /// pass to the `*_with` application methods.
    pub fn workspace(&self) -> HamWorkspace {
        HamWorkspace {
            // alloc-audit: one-time workspace setup, not a per-application
            // cost — every later apply_*_with call is heap-free.
            grid: vec![c64::ZERO; self.basis.grid().len()],
            fft: self.basis.fft().workspace(),
        }
    }

    /// Applies `H` to a block of bands.
    ///
    /// Convenience wrapper over [`Hamiltonian::apply_block_with`]. The
    /// transforms run band-sequentially: LS3DF parallelizes over
    /// fragments one level up, and a sequential inner loop keeps the
    /// steady state allocation-free (the shim's parallel iterators buffer
    /// their input).
    pub fn apply_block(&self, psi: &Matrix<c64>) -> Matrix<c64> {
        // alloc-audit: one-shot path; hot loops hold a HamWorkspace and
        // a preallocated output block.
        let mut hpsi = Matrix::zeros(psi.rows(), psi.cols());
        let mut ws = self.workspace();
        self.apply_block_with(psi, &mut hpsi, &mut ws);
        hpsi
    }

    /// Applies `H` to a block of bands into a caller-owned output block
    /// using caller-owned scratch. Performs no heap allocation.
    pub fn apply_block_with(
        &self,
        psi: &Matrix<c64>,
        hpsi: &mut Matrix<c64>,
        ws: &mut HamWorkspace,
    ) {
        assert_eq!(psi.rows(), hpsi.rows(), "apply_block: band count mismatch");
        assert_eq!(psi.cols(), hpsi.cols(), "apply_block: width mismatch");
        for b in 0..psi.rows() {
            self.apply_vec_with(psi.row(b), hpsi.row_mut(b), ws);
        }
    }

    /// Applies `H` to a single band (the band-by-band code path).
    ///
    /// Convenience wrapper over [`Hamiltonian::apply_vec_with`].
    pub fn apply_vec(&self, psi: &[c64]) -> Vec<c64> {
        // alloc-audit: one-shot path; hot loops hold a HamWorkspace and a
        // preallocated output vector.
        let mut hpsi = vec![c64::ZERO; psi.len()];
        let mut ws = self.workspace();
        self.apply_vec_with(psi, &mut hpsi, &mut ws);
        hpsi
    }

    /// `hpsi = H·psi` for one band through caller-owned scratch — the
    /// allocation-free core every other application path wraps.
    /// `hpsi` is fully overwritten.
    pub fn apply_vec_with(&self, psi: &[c64], hpsi: &mut [c64], ws: &mut HamWorkspace) {
        assert_eq!(
            psi.len(),
            self.basis.len(),
            "apply_vec: basis size mismatch"
        );
        assert_eq!(hpsi.len(), psi.len(), "apply_vec: output size mismatch");
        // Local potential via grid: ψ(G) → ψ(r) → V(r)·ψ(r) → (Vψ)(G).
        self.basis.wave_to_grid_with(psi, &mut ws.grid, &mut ws.fft);
        for (b, &vv) in ws.grid.iter_mut().zip(self.v_local.as_slice()) {
            *b = b.scale(vv);
        }
        self.basis
            .grid_to_wave_with(&mut ws.grid, hpsi, &mut ws.fft);
        // Kinetic, diagonal in G.
        for ((h, &p), &g2i) in hpsi.iter_mut().zip(psi).zip(&self.kg2) {
            *h += p.scale(0.5 * g2i);
        }
        self.nonlocal.accumulate_vec(psi, hpsi);
    }

    /// Rayleigh quotient `⟨ψ|H|ψ⟩` for a normalized band.
    pub fn expectation(&self, psi: &[c64]) -> f64 {
        let hpsi = self.apply_vec(psi);
        vec_ops::dotc(psi, &hpsi).re
    }

    /// Kinetic energy `⟨ψ|½|−i∇+k|²|ψ⟩` of one band.
    pub fn kinetic_expectation(&self, psi: &[c64]) -> f64 {
        psi.iter()
            .zip(&self.kg2)
            .map(|(c, &g2)| 0.5 * g2 * c.norm_sqr())
            .sum()
    }

    /// Subspace (Rayleigh–Ritz) matrix `M[i][j] = ⟨ψ_i|H|ψ_j⟩` given the
    /// precomputed `H·ψ` block.
    pub fn subspace_matrix(psi: &Matrix<c64>, hpsi: &Matrix<c64>) -> Matrix<c64> {
        // matmul_nh(psi, hpsi)[i][j] = Σ_G ψ_i·conj(Hψ_j) = ⟨ψ_j|H|ψ_i⟩,
        // i.e. the TRANSPOSE of M[i][j] = ⟨ψ_i|H|ψ_j⟩. Undo the transpose
        // and symmetrize against rounding in one pass.
        let m = gemm::matmul_nh(psi, hpsi);
        let n = m.rows();
        Matrix::from_fn(n, n, |i, j| (m[(j, i)] + m[(i, j)].conj()).scale(0.5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls3df_grid::Grid3;
    use ls3df_math::vec_ops::dotc;

    fn setup() -> (PwBasis, RealField) {
        let grid = Grid3::cubic(10, 8.0);
        let basis = PwBasis::new(grid.clone(), 1.5);
        let v = RealField::from_fn(grid, |r| {
            0.3 * (2.0 * std::f64::consts::PI * r[0] / 8.0).cos()
                + 0.1 * (2.0 * std::f64::consts::PI * r[1] / 8.0).sin()
        });
        (basis, v)
    }

    fn rand_block(nb: usize, npw: usize, seed: u64) -> Matrix<c64> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let mut m = Matrix::from_fn(nb, npw, |_, _| c64::new(next(), next()));
        ls3df_math::ortho::cholesky_orthonormalize(&mut m, 1.0).unwrap();
        m
    }

    #[test]
    fn hamiltonian_is_hermitian() {
        let (basis, v) = setup();
        let nl = NonlocalPotential::new(
            &basis,
            &[[1.0, 2.0, 3.0], [4.0, 4.0, 4.0]],
            |_, q| (-0.5 * q * q).exp(),
            &[1.3, -0.7],
        );
        let h = Hamiltonian::new(&basis, v, &nl);
        let psi = rand_block(4, basis.len(), 3);
        let hpsi = h.apply_block(&psi);
        // ⟨ψ_i|Hψ_j⟩ must be Hermitian for an orthonormal block.
        let m = gemm::matmul_nh(&psi, &hpsi);
        assert!(
            m.hermiticity_error() < 1e-10,
            "err = {}",
            m.hermiticity_error()
        );
    }

    #[test]
    fn free_electron_kinetic_eigenvalues() {
        let (basis, _) = setup();
        let zero_v = RealField::zeros(basis.grid().clone());
        let nl = NonlocalPotential::none(&basis);
        let h = Hamiltonian::new(&basis, zero_v, &nl);
        // Each planewave is an eigenstate with ε = |G|²/2.
        for &i in &[0usize, 1, 5, basis.len() - 1] {
            let mut psi = vec![c64::ZERO; basis.len()];
            psi[i] = c64::ONE;
            let hpsi = h.apply_vec(&psi);
            for (j, v) in hpsi.iter().enumerate() {
                let expect = if j == i { 0.5 * basis.g2()[i] } else { 0.0 };
                assert!(
                    (*v - c64::real(expect)).abs() < 1e-10,
                    "G-vector {i}: component {j} = {v:?}, want {expect}"
                );
            }
        }
    }

    #[test]
    fn constant_potential_shifts_spectrum() {
        let (basis, _) = setup();
        let v0 = 0.37;
        let v = RealField::constant(basis.grid().clone(), v0);
        let nl = NonlocalPotential::none(&basis);
        let h = Hamiltonian::new(&basis, v, &nl);
        let psi = rand_block(1, basis.len(), 5);
        let e = h.expectation(psi.row(0));
        let kin = h.kinetic_expectation(psi.row(0));
        assert!((e - kin - v0).abs() < 1e-10, "e = {e}, kinetic = {kin}");
    }

    #[test]
    fn nonlocal_projector_energy_positive_for_positive_ekb() {
        let (basis, _) = setup();
        let nl = NonlocalPotential::new(
            &basis,
            &[[0.0, 0.0, 0.0]],
            |_, q| (-q * q / 2.0).exp(),
            &[2.0],
        );
        let psi = rand_block(2, basis.len(), 8);
        let e = nl.energy(&psi, &[1.0, 1.0]);
        assert!(e >= 0.0);
        assert!(e <= 2.0 * 2.0 + 1e-12, "bounded by E_kb per band");
    }

    #[test]
    fn apply_vec_matches_block_row() {
        let (basis, v) = setup();
        let nl = NonlocalPotential::new(
            &basis,
            &[[2.0, 2.0, 2.0]],
            |_, q| (-0.8 * q * q).exp(),
            &[1.0],
        );
        let h = Hamiltonian::new(&basis, v, &nl);
        let psi = rand_block(3, basis.len(), 9);
        let hpsi = h.apply_block(&psi);
        for b in 0..3 {
            let single = h.apply_vec(psi.row(b));
            for (x, y) in single.iter().zip(hpsi.row(b)) {
                assert!((*x - *y).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn projector_normalized() {
        let (basis, _) = setup();
        let nl = NonlocalPotential::new(
            &basis,
            &[[1.0, 1.5, 2.0]],
            |_, q| (-q * q / 3.0).exp(),
            &[1.0],
        );
        let p = nl.projectors.row(0);
        assert!((dotc(p, p).re - 1.0).abs() < 1e-12);
    }
}
