//! Conjugate-gradient eigensolvers for the Kohn–Sham problem.
//!
//! Two implementations, mirroring the paper's §IV optimization story:
//!
//! * [`solve_all_band`] — the optimized scheme: all bands advance together,
//!   orthonormality is imposed through the overlap matrix (Cholesky) every
//!   few steps, and every heavy operation is a GEMM on the whole
//!   `(n_bands × n_pw)` block. This path took PEtot from 15% to 45–56% of
//!   peak.
//! * [`solve_band_by_band`] — the original scheme: one band at a time with
//!   Gram–Schmidt after every step; all BLAS-1/2 shaped operations. Kept
//!   as the ablation baseline (`cargo bench -p ls3df-bench` compares them).
//!
//! Both use the Teter–Payne–Allan kinetic preconditioner and Rayleigh–Ritz
//! subspace rotations, and converge to the same eigenpairs.

use crate::{HamWorkspace, Hamiltonian, PwBasis};
use ls3df_math::gemm::{self, Op};
use ls3df_math::ortho;
use ls3df_math::vec_ops::{axpy, dotc, dscal, nrm2};
use ls3df_math::{c64, eigh_fast as eigh, Matrix};
use ls3df_obs::{counter_add, Counter};

/// Options controlling the iterative eigensolvers.
#[derive(Clone, Debug)]
pub struct SolverOptions {
    /// Maximum outer iterations (per SCF call).
    pub max_iter: usize,
    /// Residual tolerance `max_b ‖H·ψ_b − ε_b·ψ_b‖` for convergence.
    pub tol: f64,
    /// Re-impose orthonormality (Cholesky overlap) every this many steps
    /// in the all-band scheme — the paper imposes it "after a few
    /// conjugate gradient steps".
    pub ortho_every: usize,
    /// Reset conjugate-gradient memory every this many steps.
    pub cg_reset: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            max_iter: 40,
            tol: 1e-6,
            ortho_every: 3,
            cg_reset: 10,
        }
    }
}

/// Convergence report from an eigensolve.
#[derive(Clone, Debug)]
pub struct SolveStats {
    /// Final eigenvalue estimates (ascending).
    pub eigenvalues: Vec<f64>,
    /// Final maximum residual norm.
    pub residual: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Whether `residual ≤ tol` was reached.
    pub converged: bool,
}

/// Pathological eigensolver failure.
///
/// Running out of the iteration budget is *not* an error — fragment solves
/// are deliberately step-limited and report that through
/// [`SolveStats::converged`]. These variants are the cases where the block
/// itself is poisoned and continuing would propagate garbage into the
/// density: exactly what the fragment supervision layer in `ls3df-core`
/// catches and retries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolverError {
    /// The starting block could not be orthonormalized — its rows are
    /// numerically linearly dependent.
    DependentStartVectors {
        /// Rendered factorization failure.
        detail: String,
    },
    /// The overlap matrix lost positive definiteness during periodic
    /// re-orthonormalization (the block collapsed mid-solve).
    OverlapNotPositiveDefinite {
        /// Outer iteration (1-based) at which the factorization failed.
        iteration: usize,
        /// Rendered factorization failure.
        detail: String,
    },
    /// A NaN/Inf residual appeared — the wavefunction block is poisoned.
    NonFiniteResidual {
        /// Outer iteration (1-based) at which it was detected.
        iteration: usize,
    },
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::DependentStartVectors { detail } => {
                write!(f, "start vectors are linearly dependent: {detail}")
            }
            SolverError::OverlapNotPositiveDefinite { iteration, detail } => write!(
                f,
                "overlap matrix not positive definite at iteration {iteration}: {detail}"
            ),
            SolverError::NonFiniteResidual { iteration } => {
                write!(f, "non-finite residual at iteration {iteration}")
            }
        }
    }
}

impl std::error::Error for SolverError {}

/// Teter–Payne–Allan preconditioner value for `x = ½G²/E_kin`.
#[inline]
fn tpa(x: f64) -> f64 {
    let x2 = x * x;
    let x3 = x2 * x;
    let num = 27.0 + 18.0 * x + 12.0 * x2 + 8.0 * x3;
    num / (num + 16.0 * x3 * x)
}

fn precondition(basis: &PwBasis, residual: &[c64], e_kin: f64, out: &mut [c64]) {
    let ek = e_kin.max(1e-6);
    for ((o, &r), &g2) in out.iter_mut().zip(residual).zip(basis.g2()) {
        *o = r.scale(tpa(0.5 * g2 / ek));
    }
}

/// Minimizes along `ψ' = cosθ·ψ + sinθ·d` (`d ⊥ ψ`, both normalized) and
/// applies the optimal rotation to `(ψ, Hψ)` using the precomputed `(d, Hd)`.
/// Returns the new Rayleigh quotient.
fn line_minimize(psi: &mut [c64], hpsi: &mut [c64], d: &mut [c64], hd: &mut [c64], a: f64) -> f64 {
    let c = dotc(d, hd).re;
    let w = dotc(psi, hd);
    let wabs = w.abs();
    if wabs > 1e-300 {
        // Absorb the phase so that Re⟨ψ|H|d⟩ = −|w| (steepest descent
        // direction along the circle).
        let u = -(w.conj()).scale(1.0 / wabs);
        ls3df_math::vec_ops::scal(u, d);
        ls3df_math::vec_ops::scal(u, hd);
    }
    let w_re = -wabs;
    // E(θ) = (a+c)/2 + (a−c)/2·cos2θ + w_re·sin2θ.
    let theta0 = 0.5 * (2.0 * w_re).atan2(a - c);
    let energy = |t: f64| 0.5 * (a + c) + 0.5 * (a - c) * (2.0 * t).cos() + w_re * (2.0 * t).sin();
    let (t1, t2) = (theta0, theta0 + std::f64::consts::FRAC_PI_2);
    let theta = if energy(t1) <= energy(t2) { t1 } else { t2 };
    let (s, co) = theta.sin_cos();
    for i in 0..psi.len() {
        psi[i] = psi[i].scale(co) + d[i].scale(s);
        hpsi[i] = hpsi[i].scale(co) + hd[i].scale(s);
    }
    energy(theta)
}

/// Preallocated scratch for the all-band CG solver: every per-iteration
/// temporary the loop needs, sized once for an `(n_bands × n_pw)` block.
///
/// Holding one of these across [`solve_all_band_with`] calls (or driving
/// [`cg_residual`]/[`cg_step`] directly) keeps the steady-state inner
/// loop free of heap allocations — the property the `alloc-count` test
/// asserts. A workspace is tied to the block shape and grid it was built
/// for; never share one between threads.
pub struct CgWorkspace {
    /// `H·ψ` for the current block (kept in sync with `psi` by the steps).
    hpsi: Matrix<c64>,
    /// Residual block `R_b = Hψ_b − ε_b·ψ_b`.
    resid: Matrix<c64>,
    /// Preconditioned residual block.
    pr: Matrix<c64>,
    /// Current search-direction block.
    d: Matrix<c64>,
    /// Previous search directions (CG memory).
    d_prev: Matrix<c64>,
    /// `H·d` for the search block.
    hd: Matrix<c64>,
    /// Rotation output scratch (swapped with `psi`/`hpsi` during RR).
    rot: Matrix<c64>,
    /// `(n_bands × n_bands)` overlap scratch for subspace projection.
    overlap: Matrix<c64>,
    /// Per-band `⟨R|P·R⟩` of the current step.
    rkr: Vec<f64>,
    /// Per-band `⟨R|P·R⟩` of the previous step.
    rkr_prev: Vec<f64>,
    /// Current per-band Rayleigh quotients / eigenvalue estimates.
    eigenvalues: Vec<f64>,
    /// Whether `d_prev` holds a valid direction from the previous step.
    have_dir: bool,
    /// Scratch for the `H·ψ` applications.
    ham: HamWorkspace,
}

impl CgWorkspace {
    /// Builds scratch for `n_bands` bands on the Hamiltonian's basis.
    pub fn new(h: &Hamiltonian<'_>, n_bands: usize) -> Self {
        let npw = h.basis().len();
        // alloc-audit: workspace construction — the one-time setup that
        // makes every later cg_init/cg_residual/cg_step call heap-free.
        CgWorkspace {
            hpsi: Matrix::zeros(n_bands, npw),
            resid: Matrix::zeros(n_bands, npw),
            pr: Matrix::zeros(n_bands, npw),
            d: Matrix::zeros(n_bands, npw),
            d_prev: Matrix::zeros(n_bands, npw),
            hd: Matrix::zeros(n_bands, npw),
            rot: Matrix::zeros(n_bands, npw),
            overlap: Matrix::zeros(n_bands, n_bands),
            rkr: vec![0.0; n_bands], // alloc-audit: once per workspace
            rkr_prev: vec![0.0; n_bands],
            eigenvalues: vec![0.0; n_bands],
            have_dir: false,
            ham: h.workspace(),
        }
    }

    /// Current per-band eigenvalue estimates (Rayleigh quotients).
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }
}

/// Initializes the CG state for a (new) block: computes `H·ψ` and the
/// per-band Rayleigh quotients. Allocation-free; call once before a
/// sequence of [`cg_residual`]/[`cg_step`] pairs.
pub fn cg_init(h: &Hamiltonian<'_>, psi: &Matrix<c64>, ws: &mut CgWorkspace) {
    h.apply_block_with(psi, &mut ws.hpsi, &mut ws.ham);
    for b in 0..psi.rows() {
        ws.eigenvalues[b] = dotc(psi.row(b), ws.hpsi.row(b)).re;
    }
    ws.have_dir = false;
}

/// Rayleigh–Ritz housekeeping: diagonalizes the subspace Hamiltonian and
/// rotates `psi`, `H·ψ`, and the CG memory into the eigenbasis.
///
/// This is the once-per-outer-iteration step that owns the (small, `n_b²`)
/// eigensolve — the only part of the loop allowed to allocate.
fn rr_rotate(psi: &mut Matrix<c64>, ws: &mut CgWorkspace) {
    let nb = psi.rows();
    let m = Hamiltonian::subspace_matrix(psi, &ws.hpsi);
    let eig = eigh(&m);
    ws.eigenvalues.copy_from_slice(&eig.values);
    // out[i] = Σ_j vectors[(j,i)]·block[j] — same arithmetic as the GEMM
    // with Op::Trans this replaces, done band-sequentially through the
    // preallocated rotation scratch.
    let rotate_into = |block: &Matrix<c64>, out: &mut Matrix<c64>| {
        for i in 0..nb {
            let row = out.row_mut(i);
            row.fill(c64::ZERO);
        }
        for i in 0..nb {
            for j in 0..nb {
                axpy(eig.vectors[(j, i)], block.row(j), out.row_mut(i));
            }
        }
    };
    rotate_into(psi, &mut ws.rot);
    std::mem::swap(psi, &mut ws.rot);
    rotate_into(&ws.hpsi, &mut ws.rot);
    std::mem::swap(&mut ws.hpsi, &mut ws.rot);
    if ws.have_dir {
        rotate_into(&ws.d_prev, &mut ws.rot);
        std::mem::swap(&mut ws.d_prev, &mut ws.rot);
    }
}

/// Computes the residual block `R_b = Hψ_b − ε_b·ψ_b` into the workspace
/// and returns the worst band residual norm. Allocation-free.
pub fn cg_residual(psi: &Matrix<c64>, ws: &mut CgWorkspace) -> f64 {
    let nb = psi.rows();
    ws.resid.as_mut_slice().copy_from_slice(ws.hpsi.as_slice());
    let mut worst = 0.0_f64;
    for b in 0..nb {
        let eps = ws.eigenvalues[b];
        for (r, &p) in ws.resid.row_mut(b).iter_mut().zip(psi.row(b)) {
            *r -= p.scale(eps);
        }
        worst = worst.max(nrm2(ws.resid.row(b)));
    }
    worst
}

/// Advances the whole block one preconditioned CG + line-minimization
/// step, in place. Requires the residuals from [`cg_residual`]; pass
/// `reset = true` to drop the CG memory (periodic restart).
/// Allocation-free — the steady-state hot path of PEtot_F.
pub fn cg_step(h: &Hamiltonian<'_>, psi: &mut Matrix<c64>, ws: &mut CgWorkspace, reset: bool) {
    let nb = psi.rows();

    // Preconditioned steepest-descent block + CG memory.
    for b in 0..nb {
        let ekin = h.kinetic_expectation(psi.row(b));
        precondition(h.basis(), ws.resid.row(b), ekin, ws.pr.row_mut(b));
        ws.rkr[b] = dotc(ws.resid.row(b), ws.pr.row(b)).re.max(1e-300);
    }
    ws.d.as_mut_slice().copy_from_slice(ws.pr.as_slice());
    if ws.have_dir && !reset {
        for b in 0..nb {
            let beta = ws.rkr[b] / ws.rkr_prev[b].max(1e-300);
            for (x, &p) in ws.d.row_mut(b).iter_mut().zip(ws.d_prev.row(b)) {
                *x = x.mul_add(c64::real(beta), p);
            }
        }
    }
    ws.rkr_prev.copy_from_slice(&ws.rkr);

    // Project the search block out of the occupied subspace and normalize
    // rows. Overlaps are taken against the unmodified block first (classic
    // Gram–Schmidt, matching the GEMM-pair formulation this replaces).
    for b in 0..nb {
        for j in 0..nb {
            // O[b][j] = Σ_G d_b·conj(ψ_j), the ψ_j coefficient in d_b.
            ws.overlap[(b, j)] = dotc(psi.row(j), ws.d.row(b));
        }
    }
    for b in 0..nb {
        for j in 0..nb {
            axpy(-ws.overlap[(b, j)], psi.row(j), ws.d.row_mut(b));
        }
        let n = nrm2(ws.d.row(b));
        if n > 1e-300 {
            dscal(1.0 / n, ws.d.row_mut(b));
        }
    }
    ws.d_prev.as_mut_slice().copy_from_slice(ws.d.as_slice());
    ws.have_dir = true;

    // One H application for the whole search block, then per-band line
    // minimization.
    h.apply_block_with(&ws.d, &mut ws.hd, &mut ws.ham);
    for b in 0..nb {
        let a = ws.eigenvalues[b];
        ws.eigenvalues[b] = line_minimize(
            psi.row_mut(b),
            ws.hpsi.row_mut(b),
            ws.d.row_mut(b),
            ws.hd.row_mut(b),
            a,
        );
    }
}

/// All-band preconditioned conjugate gradient with Rayleigh–Ritz subspace
/// rotation and overlap-matrix (Cholesky) orthonormalization.
///
/// `psi` holds the starting guess `(n_bands × n_pw)` and is overwritten by
/// the converged eigenvectors (ascending eigenvalue order).
pub fn solve_all_band(
    h: &Hamiltonian<'_>,
    psi: &mut Matrix<c64>,
    opts: &SolverOptions,
) -> SolveStats {
    // alloc-audit: once per solve — the CG loop itself reuses this scratch.
    let mut ws = CgWorkspace::new(h, psi.rows());
    solve_all_band_with(h, psi, opts, &mut ws)
}

/// Panicking façade over [`try_solve_all_band_with`] for callers with no
/// recovery path (benches, tests, one-shot tools). The supervised fragment
/// loop in `ls3df-core` uses the `try_` form instead.
pub fn solve_all_band_with(
    h: &Hamiltonian<'_>,
    psi: &mut Matrix<c64>,
    opts: &SolverOptions,
    ws: &mut CgWorkspace,
) -> SolveStats {
    try_solve_all_band_with(h, psi, opts, ws).expect("all-band eigensolve failed")
}

/// Fallible all-band solve (see [`solve_all_band`]); allocates its own
/// workspace.
pub fn try_solve_all_band(
    h: &Hamiltonian<'_>,
    psi: &mut Matrix<c64>,
    opts: &SolverOptions,
) -> Result<SolveStats, SolverError> {
    // alloc-audit: once per solve — the CG loop itself reuses this scratch.
    let mut ws = CgWorkspace::new(h, psi.rows());
    try_solve_all_band_with(h, psi, opts, &mut ws)
}

/// [`solve_all_band`] driving caller-owned scratch, so repeated solves
/// (one per SCF iteration) reuse one set of block temporaries.
///
/// Pathological states (dependent start vectors, an indefinite overlap,
/// NaN residuals) return a typed [`SolverError`] instead of panicking, so
/// the caller can retry from a fresh start block. Budgeted non-convergence
/// is still reported through [`SolveStats::converged`].
pub fn try_solve_all_band_with(
    h: &Hamiltonian<'_>,
    psi: &mut Matrix<c64>,
    opts: &SolverOptions,
    ws: &mut CgWorkspace,
) -> Result<SolveStats, SolverError> {
    let nb = psi.rows();
    let npw = psi.cols();
    assert!(nb >= 1 && npw == h.basis().len());
    ortho::cholesky_orthonormalize(psi, 1.0).map_err(|e| SolverError::DependentStartVectors {
        detail: e.to_string(),
    })?;
    cg_init(h, psi, ws);
    let mut residual = f64::INFINITY;
    let mut iterations = 0;

    for iter in 0..opts.max_iter {
        iterations = iter + 1;
        // Rayleigh–Ritz rotation (housekeeping; owns the small eigensolve).
        rr_rotate(psi, ws);

        // Residuals R_b = Hψ_b − ε_b ψ_b. NaN eigenvalues must be caught
        // explicitly: `f64::max` in the residual reduction ignores NaN, so
        // a poisoned block would otherwise report residual 0 ("converged").
        residual = cg_residual(psi, ws);
        if !residual.is_finite() || ws.eigenvalues.iter().any(|e| !e.is_finite()) {
            return Err(SolverError::NonFiniteResidual {
                iteration: iterations,
            });
        }
        if residual <= opts.tol {
            break;
        }

        // The allocation-free hot path: precondition, β-combine, project,
        // normalize, one H·d application, per-band line minimization.
        cg_step(h, psi, ws, iter % opts.cg_reset == 0);
        counter_add(Counter::CgBandIterations, nb as u64);

        // Re-impose exact orthonormality every few steps via the overlap
        // matrix; L⁻¹ is applied to Hψ too (linearity) so no extra H·ψ.
        if (iter + 1) % opts.ortho_every == 0 {
            let s = gemm::overlap_hermitian(psi, 1.0);
            let ch = ls3df_math::Cholesky::new(&s).map_err(|e| {
                SolverError::OverlapNotPositiveDefinite {
                    iteration: iterations,
                    detail: e.to_string(),
                }
            })?;
            ch.solve_l_block(psi);
            ch.solve_l_block(&mut ws.hpsi);
            ws.have_dir = false; // search directions are stale after re-orthonormalization
        }
    }
    // Leave the block exactly orthonormal for downstream consumers (density
    // accumulation, invariant checks): line minimization drifts the rows at
    // the residual level between the periodic re-orthonormalizations above.
    // The eigenvalues stay accurate to O(residual²).
    let _ = ortho::cholesky_orthonormalize(psi, 1.0);
    Ok(SolveStats {
        // alloc-audit: result reporting, once per solve.
        eigenvalues: ws.eigenvalues.clone(),
        residual,
        iterations,
        converged: residual <= opts.tol,
    })
}

/// Band-by-band preconditioned conjugate gradient with Gram–Schmidt
/// orthogonalization after every step (the pre-optimization PEtot scheme).
///
/// Panicking façade over [`try_solve_band_by_band`].
pub fn solve_band_by_band(
    h: &Hamiltonian<'_>,
    psi: &mut Matrix<c64>,
    opts: &SolverOptions,
) -> SolveStats {
    try_solve_band_by_band(h, psi, opts).expect("band-by-band eigensolve failed")
}

/// Fallible band-by-band solve; see [`try_solve_all_band_with`] for the
/// error contract.
pub fn try_solve_band_by_band(
    h: &Hamiltonian<'_>,
    psi: &mut Matrix<c64>,
    opts: &SolverOptions,
) -> Result<SolveStats, SolverError> {
    let nb = psi.rows();
    let npw = psi.cols();
    assert!(npw == h.basis().len());
    ortho::gram_schmidt(psi, 1.0).map_err(|e| SolverError::DependentStartVectors {
        detail: e.to_string(),
    })?;
    // Per-band working vectors, allocated once and reused across every
    // band and CG step (the per-step loop below is heap-free).
    // alloc-audit: once per solve, not per step.
    let mut eigenvalues = vec![0.0_f64; nb];
    let mut v = vec![c64::ZERO; npw];
    let mut hv = vec![c64::ZERO; npw];
    let mut r = vec![c64::ZERO; npw]; // alloc-audit: once per solve
    let mut pr = vec![c64::ZERO; npw];
    let mut d = vec![c64::ZERO; npw];
    let mut d_prev = vec![c64::ZERO; npw]; // alloc-audit: once per solve
    let mut hd = vec![c64::ZERO; npw];
    let mut ham_ws = h.workspace();
    let mut worst_residual = 0.0_f64;
    let mut iterations = 0;

    for b in 0..nb {
        // Work on band b, keeping it orthogonal to converged bands 0..b.
        v.copy_from_slice(psi.row(b));
        h.apply_vec_with(&v, &mut hv, &mut ham_ws);
        let mut eps = dotc(&v, &hv).re;
        let mut have_prev = false;
        let mut rkr_prev = 0.0_f64;
        let mut res = f64::INFINITY;
        for step in 0..opts.max_iter {
            iterations = iterations.max(step + 1);
            // Residual.
            r.copy_from_slice(&hv);
            axpy(c64::real(-eps), &v, &mut r);
            res = nrm2(&r);
            if !res.is_finite() {
                return Err(SolverError::NonFiniteResidual {
                    iteration: step + 1,
                });
            }
            if res <= opts.tol {
                break;
            }
            // Precondition + project against bands ≤ b (BLAS-1/2 work).
            precondition(h.basis(), &r, h.kinetic_expectation(&v), &mut pr);
            for j in 0..b {
                let o = dotc(psi.row(j), &pr);
                axpy(-o, psi.row(j), &mut pr);
            }
            let o = dotc(&v, &pr);
            axpy(-o, &v, &mut pr);
            let rkr = dotc(&r, &pr).re.max(1e-300);
            d.copy_from_slice(&pr);
            if have_prev && step % opts.cg_reset != 0 {
                let beta = rkr / rkr_prev.max(1e-300);
                axpy(c64::real(beta), &d_prev, &mut d);
                // Re-project the combined direction.
                for j in 0..b {
                    let o = dotc(psi.row(j), &d);
                    axpy(-o, psi.row(j), &mut d);
                }
                let o = dotc(&v, &d);
                axpy(-o, &v, &mut d);
            }
            rkr_prev = rkr;
            let n = nrm2(&d);
            if n < 1e-300 {
                break;
            }
            dscal(1.0 / n, &mut d);
            d_prev.copy_from_slice(&d);
            have_prev = true;
            counter_add(Counter::CgBandIterations, 1);
            h.apply_vec_with(&d, &mut hd, &mut ham_ws);
            eps = line_minimize(&mut v, &mut hv, &mut d, &mut hd, eps);
        }
        worst_residual = worst_residual.max(res);
        eigenvalues[b] = eps;
        psi.row_mut(b).copy_from_slice(&v);
        // Gram–Schmidt the *following* bands against this one so their
        // guesses stay independent (original PEtot behavior).
        for j in (b + 1)..nb {
            let (rj, rb) = psi.rows_mut2(j, b);
            let o = dotc(rb, rj);
            axpy(-o, rb, rj);
            let n = nrm2(rj);
            if n > 1e-300 {
                dscal(1.0 / n, rj);
            }
        }
    }

    // Clean up the per-band drift before the final subspace rotation so the
    // rotation is applied to an exactly orthonormal block (and stays
    // orthonormality-preserving).
    let _ = ortho::cholesky_orthonormalize(psi, 1.0);
    // Final subspace rotation to disentangle near-degenerate bands.
    // alloc-audit: once per solve (post-loop reporting, not the hot path).
    let mut hpsi = h.apply_block(psi);
    let m = Hamiltonian::subspace_matrix(psi, &hpsi);
    let eig = eigh(&m);
    // alloc-audit: once per solve.
    let mut rotated = Matrix::zeros(nb, npw);
    gemm::gemm(
        c64::ONE,
        &eig.vectors,
        Op::Trans,
        psi,
        Op::None,
        c64::ZERO,
        &mut rotated,
    );
    *psi = rotated;
    hpsi = h.apply_block(psi);
    let mut worst = 0.0_f64;
    for b in 0..nb {
        r.copy_from_slice(hpsi.row(b));
        axpy(c64::real(-eig.values[b]), psi.row(b), &mut r);
        worst = worst.max(nrm2(&r));
    }
    Ok(SolveStats {
        eigenvalues: eig.values,
        residual: worst,
        iterations,
        converged: worst <= opts.tol * 10.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::NonlocalPotential;
    use ls3df_grid::{Grid3, RealField};

    fn rand_block(nb: usize, npw: usize, seed: u64) -> Matrix<c64> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        Matrix::from_fn(nb, npw, |_, _| c64::new(next(), next()))
    }

    #[test]
    fn free_electron_spectrum_recovered() {
        let grid = Grid3::cubic(10, 9.0);
        let basis = PwBasis::new(grid.clone(), 1.2);
        let v = RealField::zeros(grid);
        let nl = NonlocalPotential::none(&basis);
        let h = Hamiltonian::new(&basis, v, &nl);
        // Exact spectrum = sorted |G|²/2.
        let mut exact: Vec<f64> = basis.g2().iter().map(|&g2| 0.5 * g2).collect();
        exact.sort_by(|a, b| a.partial_cmp(b).unwrap());

        let nb = 6;
        let mut psi = rand_block(nb, basis.len(), 1);
        let stats = solve_all_band(
            &h,
            &mut psi,
            &SolverOptions {
                max_iter: 120,
                tol: 1e-8,
                ..Default::default()
            },
        );
        assert!(stats.converged, "residual = {}", stats.residual);
        for b in 0..nb {
            assert!(
                (stats.eigenvalues[b] - exact[b]).abs() < 1e-6,
                "band {b}: {} vs exact {}",
                stats.eigenvalues[b],
                exact[b]
            );
        }
    }

    #[test]
    fn both_solvers_agree_on_nontrivial_potential() {
        let grid = Grid3::cubic(10, 8.0);
        let basis = PwBasis::new(grid.clone(), 1.4);
        let v = RealField::from_fn(grid, |r| {
            let d2 = (r[0] - 4.0).powi(2) + (r[1] - 4.0).powi(2) + (r[2] - 4.0).powi(2);
            -0.8 * (-d2 / 6.0).exp()
        });
        let nl = NonlocalPotential::new(
            &basis,
            &[[4.0, 4.0, 4.0]],
            |_, q| (-q * q / 2.0).exp(),
            &[0.8],
        );
        let h = Hamiltonian::new(&basis, v, &nl);

        let nb = 4;
        let opts = SolverOptions {
            max_iter: 200,
            tol: 1e-7,
            ..Default::default()
        };
        let mut psi_a = rand_block(nb, basis.len(), 2);
        let a = solve_all_band(&h, &mut psi_a, &opts);
        let mut psi_b = rand_block(nb, basis.len(), 99);
        let b = solve_band_by_band(&h, &mut psi_b, &opts);
        assert!(a.converged, "all-band residual {}", a.residual);
        for band in 0..nb {
            assert!(
                (a.eigenvalues[band] - b.eigenvalues[band]).abs() < 1e-4,
                "band {band}: all-band {} vs band-by-band {}",
                a.eigenvalues[band],
                b.eigenvalues[band]
            );
        }
    }

    #[test]
    fn gaussian_well_bound_state_below_zero() {
        // A single attractive Gaussian well must produce a bound ground
        // state with ε < 0 and a localized wavefunction.
        let l = 12.0;
        let grid = Grid3::cubic(14, l);
        let basis = PwBasis::new(grid.clone(), 1.3);
        let depth = 1.5;
        let v = RealField::from_fn(grid, |r| {
            let d2 = (r[0] - 6.0).powi(2) + (r[1] - 6.0).powi(2) + (r[2] - 6.0).powi(2);
            -depth * (-d2 / 4.0).exp()
        });
        let nl = NonlocalPotential::none(&basis);
        let h = Hamiltonian::new(&basis, v, &nl);
        let mut psi = rand_block(3, basis.len(), 7);
        let stats = solve_all_band(
            &h,
            &mut psi,
            &SolverOptions {
                max_iter: 150,
                tol: 1e-7,
                ..Default::default()
            },
        );
        assert!(stats.converged);
        assert!(
            stats.eigenvalues[0] < -0.3,
            "ground state {} not bound",
            stats.eigenvalues[0]
        );
        assert!(
            stats.eigenvalues[0] > -depth,
            "cannot be deeper than the well"
        );
        // Orthonormality preserved.
        assert!(ortho::orthonormality_residual(&psi, 1.0) < 1e-8);
    }

    #[test]
    fn dependent_start_vectors_are_typed_errors() {
        let grid = Grid3::cubic(8, 7.0);
        let basis = PwBasis::new(grid.clone(), 1.0);
        let v = RealField::zeros(grid);
        let nl = NonlocalPotential::none(&basis);
        let h = Hamiltonian::new(&basis, v, &nl);
        let mut psi = rand_block(3, basis.len(), 11);
        let dup = psi.row(0).to_vec();
        psi.row_mut(1).copy_from_slice(&dup);
        let opts = SolverOptions::default();
        match try_solve_all_band(&h, &mut psi.clone(), &opts) {
            Err(SolverError::DependentStartVectors { .. }) => {}
            other => panic!("expected DependentStartVectors, got {other:?}"),
        }
        match try_solve_band_by_band(&h, &mut psi, &opts) {
            Err(SolverError::DependentStartVectors { .. }) => {}
            other => panic!("expected DependentStartVectors, got {other:?}"),
        }
    }

    #[test]
    fn nan_potential_reports_non_finite_residual() {
        let grid = Grid3::cubic(8, 7.0);
        let basis = PwBasis::new(grid.clone(), 1.0);
        let v = RealField::from_fn(grid, |_| f64::NAN);
        let nl = NonlocalPotential::none(&basis);
        let h = Hamiltonian::new(&basis, v, &nl);
        let opts = SolverOptions::default();
        let mut psi = rand_block(3, basis.len(), 13);
        match try_solve_all_band(&h, &mut psi, &opts) {
            Err(SolverError::NonFiniteResidual { iteration }) => assert!(iteration >= 1),
            other => panic!("expected NonFiniteResidual, got {other:?}"),
        }
        let mut psi2 = rand_block(3, basis.len(), 17);
        match try_solve_band_by_band(&h, &mut psi2, &opts) {
            Err(SolverError::NonFiniteResidual { .. }) => {}
            other => panic!("expected NonFiniteResidual, got {other:?}"),
        }
    }

    #[test]
    fn eigenvalues_ascend_and_residuals_small() {
        let grid = Grid3::cubic(8, 7.0);
        let basis = PwBasis::new(grid.clone(), 1.0);
        let v = RealField::from_fn(grid, |r| 0.3 * (r[0] - 3.5).signum());
        let nl = NonlocalPotential::none(&basis);
        let h = Hamiltonian::new(&basis, v, &nl);
        let mut psi = rand_block(5, basis.len(), 21);
        let stats = solve_all_band(
            &h,
            &mut psi,
            &SolverOptions {
                max_iter: 150,
                tol: 1e-6,
                ..Default::default()
            },
        );
        for w in stats.eigenvalues.windows(2) {
            assert!(w[0] <= w[1] + 1e-9);
        }
        let hpsi = h.apply_block(&psi);
        for b in 0..5 {
            let mut r = hpsi.row(b).to_vec();
            axpy(c64::real(-stats.eigenvalues[b]), psi.row(b), &mut r);
            assert!(nrm2(&r) < 1e-4, "band {b} residual {}", nrm2(&r));
        }
    }
}
