//! Conjugate-gradient eigensolvers for the Kohn–Sham problem.
//!
//! Two implementations, mirroring the paper's §IV optimization story:
//!
//! * [`solve_all_band`] — the optimized scheme: all bands advance together,
//!   orthonormality is imposed through the overlap matrix (Cholesky) every
//!   few steps, and every heavy operation is a GEMM on the whole
//!   `(n_bands × n_pw)` block. This path took PEtot from 15% to 45–56% of
//!   peak.
//! * [`solve_band_by_band`] — the original scheme: one band at a time with
//!   Gram–Schmidt after every step; all BLAS-1/2 shaped operations. Kept
//!   as the ablation baseline (`cargo bench -p ls3df-bench` compares them).
//!
//! Both use the Teter–Payne–Allan kinetic preconditioner and Rayleigh–Ritz
//! subspace rotations, and converge to the same eigenpairs.

use crate::{Hamiltonian, PwBasis};
use ls3df_math::gemm::{self, Op};
use ls3df_math::ortho;
use ls3df_math::vec_ops::{axpy, dotc, dscal, nrm2};
use ls3df_math::{c64, eigh_fast as eigh, Matrix};

/// Options controlling the iterative eigensolvers.
#[derive(Clone, Debug)]
pub struct SolverOptions {
    /// Maximum outer iterations (per SCF call).
    pub max_iter: usize,
    /// Residual tolerance `max_b ‖H·ψ_b − ε_b·ψ_b‖` for convergence.
    pub tol: f64,
    /// Re-impose orthonormality (Cholesky overlap) every this many steps
    /// in the all-band scheme — the paper imposes it "after a few
    /// conjugate gradient steps".
    pub ortho_every: usize,
    /// Reset conjugate-gradient memory every this many steps.
    pub cg_reset: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            max_iter: 40,
            tol: 1e-6,
            ortho_every: 3,
            cg_reset: 10,
        }
    }
}

/// Convergence report from an eigensolve.
#[derive(Clone, Debug)]
pub struct SolveStats {
    /// Final eigenvalue estimates (ascending).
    pub eigenvalues: Vec<f64>,
    /// Final maximum residual norm.
    pub residual: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Whether `residual ≤ tol` was reached.
    pub converged: bool,
}

/// Teter–Payne–Allan preconditioner value for `x = ½G²/E_kin`.
#[inline]
fn tpa(x: f64) -> f64 {
    let x2 = x * x;
    let x3 = x2 * x;
    let num = 27.0 + 18.0 * x + 12.0 * x2 + 8.0 * x3;
    num / (num + 16.0 * x3 * x)
}

fn precondition(basis: &PwBasis, residual: &[c64], e_kin: f64, out: &mut [c64]) {
    let ek = e_kin.max(1e-6);
    for ((o, &r), &g2) in out.iter_mut().zip(residual).zip(basis.g2()) {
        *o = r.scale(tpa(0.5 * g2 / ek));
    }
}

/// Minimizes along `ψ' = cosθ·ψ + sinθ·d` (`d ⊥ ψ`, both normalized) and
/// applies the optimal rotation to `(ψ, Hψ)` using the precomputed `(d, Hd)`.
/// Returns the new Rayleigh quotient.
fn line_minimize(psi: &mut [c64], hpsi: &mut [c64], d: &mut [c64], hd: &mut [c64], a: f64) -> f64 {
    let c = dotc(d, hd).re;
    let w = dotc(psi, hd);
    let wabs = w.abs();
    if wabs > 1e-300 {
        // Absorb the phase so that Re⟨ψ|H|d⟩ = −|w| (steepest descent
        // direction along the circle).
        let u = -(w.conj()).scale(1.0 / wabs);
        ls3df_math::vec_ops::scal(u, d);
        ls3df_math::vec_ops::scal(u, hd);
    }
    let w_re = -wabs;
    // E(θ) = (a+c)/2 + (a−c)/2·cos2θ + w_re·sin2θ.
    let theta0 = 0.5 * (2.0 * w_re).atan2(a - c);
    let energy = |t: f64| 0.5 * (a + c) + 0.5 * (a - c) * (2.0 * t).cos() + w_re * (2.0 * t).sin();
    let (t1, t2) = (theta0, theta0 + std::f64::consts::FRAC_PI_2);
    let theta = if energy(t1) <= energy(t2) { t1 } else { t2 };
    let (s, co) = theta.sin_cos();
    for i in 0..psi.len() {
        psi[i] = psi[i].scale(co) + d[i].scale(s);
        hpsi[i] = hpsi[i].scale(co) + hd[i].scale(s);
    }
    energy(theta)
}

/// All-band preconditioned conjugate gradient with Rayleigh–Ritz subspace
/// rotation and overlap-matrix (Cholesky) orthonormalization.
///
/// `psi` holds the starting guess `(n_bands × n_pw)` and is overwritten by
/// the converged eigenvectors (ascending eigenvalue order).
pub fn solve_all_band(
    h: &Hamiltonian<'_>,
    psi: &mut Matrix<c64>,
    opts: &SolverOptions,
) -> SolveStats {
    let nb = psi.rows();
    let npw = psi.cols();
    assert!(nb >= 1 && npw == h.basis().len());
    ortho::cholesky_orthonormalize(psi, 1.0).expect("independent start vectors");
    let mut hpsi = h.apply_block(psi);
    let mut dir: Option<Matrix<c64>> = None;
    let mut rkr_prev = vec![0.0_f64; nb];
    let mut eigenvalues = vec![0.0_f64; nb];
    let mut residual = f64::INFINITY;
    let mut iterations = 0;

    for iter in 0..opts.max_iter {
        iterations = iter + 1;
        // Rayleigh–Ritz rotation.
        let m = Hamiltonian::subspace_matrix(psi, &hpsi);
        let eig = eigh(&m);
        eigenvalues.copy_from_slice(&eig.values);
        let rotate = |block: &Matrix<c64>| -> Matrix<c64> {
            let mut out = Matrix::zeros(nb, npw);
            gemm::gemm(
                c64::ONE,
                &eig.vectors,
                Op::Trans,
                block,
                Op::None,
                c64::ZERO,
                &mut out,
            );
            out
        };
        *psi = rotate(psi);
        hpsi = rotate(&hpsi);
        if let Some(d) = dir.take() {
            dir = Some(rotate(&d));
        }

        // Residuals R_b = Hψ_b − ε_b ψ_b.
        let mut resid = hpsi.clone();
        for b in 0..nb {
            let eps = eigenvalues[b];
            let (r_row, p_row) = (resid.row_mut(b), psi.row(b));
            for (r, &p) in r_row.iter_mut().zip(p_row) {
                *r -= p.scale(eps);
            }
        }
        residual = (0..nb).map(|b| nrm2(resid.row(b))).fold(0.0, f64::max);
        if residual <= opts.tol {
            break;
        }

        // Preconditioned steepest-descent block + CG memory.
        let mut pr = Matrix::zeros(nb, npw);
        let mut rkr = vec![0.0_f64; nb];
        for b in 0..nb {
            let ekin = h.kinetic_expectation(psi.row(b));
            let (pr_row, r_row) = (pr.row_mut(b), resid.row(b));
            precondition(h.basis(), r_row, ekin, pr_row);
            rkr[b] = dotc(r_row, pr_row).re.max(1e-300);
        }
        let reset = iter % opts.cg_reset == 0;
        let mut d = match (&dir, reset) {
            (Some(prev), false) => {
                let mut d = pr.clone();
                for b in 0..nb {
                    let beta = rkr[b] / rkr_prev[b].max(1e-300);
                    let (d_row, prev_row) = (d.row_mut(b), prev.row(b));
                    for (x, &p) in d_row.iter_mut().zip(prev_row) {
                        *x = x.mul_add(c64::real(beta), p);
                    }
                }
                d
            }
            _ => pr,
        };
        rkr_prev = rkr;

        // Project the search block out of the occupied subspace (one GEMM
        // pair) and normalize rows.
        let overlap = gemm::matmul_nh(&d, psi); // O[b][j] = ⟨ψ_j|d_b⟩*… coefficient of ψ_j in d_b
        gemm::gemm(
            -c64::ONE,
            &overlap,
            Op::None,
            psi,
            Op::None,
            c64::ONE,
            &mut d,
        );
        for b in 0..nb {
            let n = nrm2(d.row(b));
            if n > 1e-300 {
                dscal(1.0 / n, d.row_mut(b));
            }
        }
        dir = Some(d.clone());

        // One H application for the whole search block, then per-band line
        // minimization.
        let mut hd = h.apply_block(&d);
        for b in 0..nb {
            let a = eigenvalues[b];
            let dr = d.row_mut(b);
            let hdr = hd.row_mut(b);
            let (pr_, hpr) = (psi.row_mut(b), hpsi.row_mut(b));
            eigenvalues[b] = line_minimize(pr_, hpr, dr, hdr, a);
        }

        // Re-impose exact orthonormality every few steps via the overlap
        // matrix; L⁻¹ is applied to Hψ too (linearity) so no extra H·ψ.
        if (iter + 1) % opts.ortho_every == 0 {
            let s = gemm::overlap_hermitian(psi, 1.0);
            let ch = ls3df_math::Cholesky::new(&s).expect("overlap stays positive definite");
            ch.solve_l_block(psi);
            ch.solve_l_block(&mut hpsi);
            dir = None; // search directions are stale after re-orthonormalization
        }
    }
    // Leave the block exactly orthonormal for downstream consumers (density
    // accumulation, invariant checks): line minimization drifts the rows at
    // the residual level between the periodic re-orthonormalizations above.
    // The eigenvalues stay accurate to O(residual²).
    let _ = ortho::cholesky_orthonormalize(psi, 1.0);
    SolveStats {
        eigenvalues,
        residual,
        iterations,
        converged: residual <= opts.tol,
    }
}

/// Band-by-band preconditioned conjugate gradient with Gram–Schmidt
/// orthogonalization after every step (the pre-optimization PEtot scheme).
pub fn solve_band_by_band(
    h: &Hamiltonian<'_>,
    psi: &mut Matrix<c64>,
    opts: &SolverOptions,
) -> SolveStats {
    let nb = psi.rows();
    let npw = psi.cols();
    assert!(npw == h.basis().len());
    ortho::gram_schmidt(psi, 1.0).expect("independent start vectors");
    let mut eigenvalues = vec![0.0_f64; nb];
    let mut worst_residual = 0.0_f64;
    let mut iterations = 0;

    for b in 0..nb {
        // Work on band b, keeping it orthogonal to converged bands 0..b.
        let mut v = psi.row(b).to_vec();
        let mut hv = h.apply_vec(&v);
        let mut eps = dotc(&v, &hv).re;
        let mut d_prev: Option<Vec<c64>> = None;
        let mut rkr_prev = 0.0_f64;
        let mut res = f64::INFINITY;
        for step in 0..opts.max_iter {
            iterations = iterations.max(step + 1);
            // Residual.
            let mut r = hv.clone();
            axpy(c64::real(-eps), &v, &mut r);
            res = nrm2(&r);
            if res <= opts.tol {
                break;
            }
            // Precondition + project against bands ≤ b (BLAS-1/2 work).
            let mut pr = vec![c64::ZERO; npw];
            precondition(h.basis(), &r, h.kinetic_expectation(&v), &mut pr);
            for j in 0..b {
                let o = dotc(psi.row(j), &pr);
                axpy(-o, psi.row(j), &mut pr);
            }
            let o = dotc(&v, &pr);
            axpy(-o, &v, &mut pr);
            let rkr = dotc(&r, &pr).re.max(1e-300);
            let mut d = match (&d_prev, step % opts.cg_reset == 0) {
                (Some(prev), false) => {
                    let beta = rkr / rkr_prev.max(1e-300);
                    let mut d = pr.clone();
                    axpy(c64::real(beta), prev, &mut d);
                    // Re-project the combined direction.
                    for j in 0..b {
                        let o = dotc(psi.row(j), &d);
                        axpy(-o, psi.row(j), &mut d);
                    }
                    let o = dotc(&v, &d);
                    axpy(-o, &v, &mut d);
                    d
                }
                _ => pr,
            };
            rkr_prev = rkr;
            let n = nrm2(&d);
            if n < 1e-300 {
                break;
            }
            dscal(1.0 / n, &mut d);
            d_prev = Some(d.clone());
            let mut hd = h.apply_vec(&d);
            eps = line_minimize(&mut v, &mut hv, &mut d, &mut hd, eps);
        }
        worst_residual = worst_residual.max(res);
        eigenvalues[b] = eps;
        psi.row_mut(b).copy_from_slice(&v);
        // Gram–Schmidt the *following* bands against this one so their
        // guesses stay independent (original PEtot behavior).
        for j in (b + 1)..nb {
            let (rj, rb) = psi.rows_mut2(j, b);
            let o = dotc(rb, rj);
            axpy(-o, rb, rj);
            let n = nrm2(rj);
            if n > 1e-300 {
                dscal(1.0 / n, rj);
            }
        }
    }

    // Clean up the per-band drift before the final subspace rotation so the
    // rotation is applied to an exactly orthonormal block (and stays
    // orthonormality-preserving).
    let _ = ortho::cholesky_orthonormalize(psi, 1.0);
    // Final subspace rotation to disentangle near-degenerate bands.
    let mut hpsi = h.apply_block(psi);
    let m = Hamiltonian::subspace_matrix(psi, &hpsi);
    let eig = eigh(&m);
    let mut rotated = Matrix::zeros(nb, npw);
    gemm::gemm(
        c64::ONE,
        &eig.vectors,
        Op::Trans,
        psi,
        Op::None,
        c64::ZERO,
        &mut rotated,
    );
    *psi = rotated;
    hpsi = h.apply_block(psi);
    let mut worst = 0.0_f64;
    for b in 0..nb {
        let mut r = hpsi.row(b).to_vec();
        axpy(c64::real(-eig.values[b]), psi.row(b), &mut r);
        worst = worst.max(nrm2(&r));
    }
    SolveStats {
        eigenvalues: eig.values,
        residual: worst,
        iterations,
        converged: worst <= opts.tol * 10.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::NonlocalPotential;
    use ls3df_grid::{Grid3, RealField};

    fn rand_block(nb: usize, npw: usize, seed: u64) -> Matrix<c64> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        Matrix::from_fn(nb, npw, |_, _| c64::new(next(), next()))
    }

    #[test]
    fn free_electron_spectrum_recovered() {
        let grid = Grid3::cubic(10, 9.0);
        let basis = PwBasis::new(grid.clone(), 1.2);
        let v = RealField::zeros(grid);
        let nl = NonlocalPotential::none(&basis);
        let h = Hamiltonian::new(&basis, v, &nl);
        // Exact spectrum = sorted |G|²/2.
        let mut exact: Vec<f64> = basis.g2().iter().map(|&g2| 0.5 * g2).collect();
        exact.sort_by(|a, b| a.partial_cmp(b).unwrap());

        let nb = 6;
        let mut psi = rand_block(nb, basis.len(), 1);
        let stats = solve_all_band(
            &h,
            &mut psi,
            &SolverOptions {
                max_iter: 120,
                tol: 1e-8,
                ..Default::default()
            },
        );
        assert!(stats.converged, "residual = {}", stats.residual);
        for b in 0..nb {
            assert!(
                (stats.eigenvalues[b] - exact[b]).abs() < 1e-6,
                "band {b}: {} vs exact {}",
                stats.eigenvalues[b],
                exact[b]
            );
        }
    }

    #[test]
    fn both_solvers_agree_on_nontrivial_potential() {
        let grid = Grid3::cubic(10, 8.0);
        let basis = PwBasis::new(grid.clone(), 1.4);
        let v = RealField::from_fn(grid, |r| {
            let d2 = (r[0] - 4.0).powi(2) + (r[1] - 4.0).powi(2) + (r[2] - 4.0).powi(2);
            -0.8 * (-d2 / 6.0).exp()
        });
        let nl = NonlocalPotential::new(
            &basis,
            &[[4.0, 4.0, 4.0]],
            |_, q| (-q * q / 2.0).exp(),
            &[0.8],
        );
        let h = Hamiltonian::new(&basis, v, &nl);

        let nb = 4;
        let opts = SolverOptions {
            max_iter: 200,
            tol: 1e-7,
            ..Default::default()
        };
        let mut psi_a = rand_block(nb, basis.len(), 2);
        let a = solve_all_band(&h, &mut psi_a, &opts);
        let mut psi_b = rand_block(nb, basis.len(), 99);
        let b = solve_band_by_band(&h, &mut psi_b, &opts);
        assert!(a.converged, "all-band residual {}", a.residual);
        for band in 0..nb {
            assert!(
                (a.eigenvalues[band] - b.eigenvalues[band]).abs() < 1e-4,
                "band {band}: all-band {} vs band-by-band {}",
                a.eigenvalues[band],
                b.eigenvalues[band]
            );
        }
    }

    #[test]
    fn gaussian_well_bound_state_below_zero() {
        // A single attractive Gaussian well must produce a bound ground
        // state with ε < 0 and a localized wavefunction.
        let l = 12.0;
        let grid = Grid3::cubic(14, l);
        let basis = PwBasis::new(grid.clone(), 1.3);
        let depth = 1.5;
        let v = RealField::from_fn(grid, |r| {
            let d2 = (r[0] - 6.0).powi(2) + (r[1] - 6.0).powi(2) + (r[2] - 6.0).powi(2);
            -depth * (-d2 / 4.0).exp()
        });
        let nl = NonlocalPotential::none(&basis);
        let h = Hamiltonian::new(&basis, v, &nl);
        let mut psi = rand_block(3, basis.len(), 7);
        let stats = solve_all_band(
            &h,
            &mut psi,
            &SolverOptions {
                max_iter: 150,
                tol: 1e-7,
                ..Default::default()
            },
        );
        assert!(stats.converged);
        assert!(
            stats.eigenvalues[0] < -0.3,
            "ground state {} not bound",
            stats.eigenvalues[0]
        );
        assert!(
            stats.eigenvalues[0] > -depth,
            "cannot be deeper than the well"
        );
        // Orthonormality preserved.
        assert!(ortho::orthonormality_residual(&psi, 1.0) < 1e-8);
    }

    #[test]
    fn eigenvalues_ascend_and_residuals_small() {
        let grid = Grid3::cubic(8, 7.0);
        let basis = PwBasis::new(grid.clone(), 1.0);
        let v = RealField::from_fn(grid, |r| 0.3 * (r[0] - 3.5).signum());
        let nl = NonlocalPotential::none(&basis);
        let h = Hamiltonian::new(&basis, v, &nl);
        let mut psi = rand_block(5, basis.len(), 21);
        let stats = solve_all_band(
            &h,
            &mut psi,
            &SolverOptions {
                max_iter: 150,
                tol: 1e-6,
                ..Default::default()
            },
        );
        for w in stats.eigenvalues.windows(2) {
            assert!(w[0] <= w[1] + 1e-9);
        }
        let hpsi = h.apply_block(&psi);
        for b in 0..5 {
            let mut r = hpsi.row(b).to_vec();
            axpy(c64::real(-stats.eigenvalues[b]), psi.row(b), &mut r);
            assert!(nrm2(&r) < 1e-4, "band {b} residual {}", nrm2(&r));
        }
    }
}
