//! Local density approximation exchange-correlation (Perdew–Zunger 1981
//! parametrization of the Ceperley–Alder electron-gas data) — the same
//! functional class the paper's LDA calculations use.
//!
//! All quantities in Hartree atomic units; spin-unpolarized.

use std::f64::consts::PI;

/// Exchange energy density per electron: `ε_x(ρ) = −(3/4)(3ρ/π)^{1/3}`.
pub fn eps_x(rho: f64) -> f64 {
    if rho <= 0.0 {
        return 0.0;
    }
    -0.75 * (3.0 * rho / PI).powf(1.0 / 3.0)
}

/// Exchange potential `v_x = (4/3)·ε_x`.
pub fn v_x(rho: f64) -> f64 {
    4.0 / 3.0 * eps_x(rho)
}

/// Wigner–Seitz radius `r_s = (3/4πρ)^{1/3}`.
pub fn rs_of(rho: f64) -> f64 {
    (3.0 / (4.0 * PI * rho)).powf(1.0 / 3.0)
}

// Perdew–Zunger correlation constants (unpolarized).
const GAMMA: f64 = -0.1423;
const BETA1: f64 = 1.0529;
const BETA2: f64 = 0.3334;
const A: f64 = 0.0311;
const B: f64 = -0.048;
const C: f64 = 0.0020;
const D: f64 = -0.0116;

/// Correlation energy density per electron, PZ81.
pub fn eps_c(rho: f64) -> f64 {
    if rho <= 0.0 {
        return 0.0;
    }
    let rs = rs_of(rho);
    if rs >= 1.0 {
        GAMMA / (1.0 + BETA1 * rs.sqrt() + BETA2 * rs)
    } else {
        let ln = rs.ln();
        A * ln + B + C * rs * ln + D * rs
    }
}

/// Correlation potential `v_c = ε_c − (r_s/3)·dε_c/dr_s`, PZ81.
pub fn v_c(rho: f64) -> f64 {
    if rho <= 0.0 {
        return 0.0;
    }
    let rs = rs_of(rho);
    if rs >= 1.0 {
        let sq = rs.sqrt();
        let denom = 1.0 + BETA1 * sq + BETA2 * rs;
        let ec = GAMMA / denom;
        ec * (1.0 + 7.0 / 6.0 * BETA1 * sq + 4.0 / 3.0 * BETA2 * rs) / denom
    } else {
        let ln = rs.ln();
        A * ln + (B - A / 3.0) + 2.0 / 3.0 * C * rs * ln + (2.0 * D - C) / 3.0 * rs
    }
}

/// Total XC energy density per electron.
pub fn eps_xc(rho: f64) -> f64 {
    eps_x(rho) + eps_c(rho)
}

/// Total XC potential `v_xc = d(ρ·ε_xc)/dρ`.
pub fn v_xc(rho: f64) -> f64 {
    v_x(rho) + v_c(rho)
}

/// XC energy of a density sampled on a grid: `E_xc = Σᵢ ρᵢ·ε_xc(ρᵢ)·dv`.
pub fn exc_energy(rho: &[f64], dv: f64) -> f64 {
    rho.iter().map(|&r| r * eps_xc(r)).sum::<f64>() * dv
}

/// Fills `v` with the XC potential of `rho` pointwise.
pub fn vxc_field(rho: &[f64], v: &mut [f64]) {
    assert_eq!(rho.len(), v.len());
    for (vi, &r) in v.iter_mut().zip(rho) {
        *vi = v_xc(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_known_value() {
        // At ρ = 1: ε_x = −(3/4)(3/π)^{1/3} ≈ −0.738559.
        assert!((eps_x(1.0) + 0.7385587663).abs() < 1e-9);
        assert!((v_x(1.0) - 4.0 / 3.0 * eps_x(1.0)).abs() < 1e-15);
    }

    #[test]
    fn correlation_continuous_at_rs_1() {
        // PZ81 is constructed to be continuous at r_s = 1.
        let rho_at = |rs: f64| 3.0 / (4.0 * PI * rs.powi(3));
        let e_lo = eps_c(rho_at(0.999999));
        let e_hi = eps_c(rho_at(1.000001));
        assert!((e_lo - e_hi).abs() < 1e-4, "{e_lo} vs {e_hi}");
        let v_lo = v_c(rho_at(0.999999));
        let v_hi = v_c(rho_at(1.000001));
        assert!((v_lo - v_hi).abs() < 1e-3, "{v_lo} vs {v_hi}");
    }

    #[test]
    fn potential_is_derivative_of_energy_density() {
        // v_xc = d(ρ ε_xc)/dρ, checked by central differences.
        for &rho in &[0.01, 0.1, 0.5, 1.0, 3.0] {
            let h = rho * 1e-6;
            let fd = ((rho + h) * eps_xc(rho + h) - (rho - h) * eps_xc(rho - h)) / (2.0 * h);
            assert!(
                (fd - v_xc(rho)).abs() < 1e-5 * (1.0 + fd.abs()),
                "rho = {rho}: fd {fd} vs v_xc {}",
                v_xc(rho)
            );
        }
    }

    #[test]
    fn xc_negative_and_monotone() {
        let mut prev = 0.0;
        for &rho in &[0.001, 0.01, 0.1, 1.0, 10.0] {
            let e = eps_xc(rho);
            assert!(e < 0.0);
            assert!(e < prev, "ε_xc must deepen with density");
            prev = e;
        }
    }

    #[test]
    fn zero_density_safe() {
        assert_eq!(eps_xc(0.0), 0.0);
        assert_eq!(v_xc(0.0), 0.0);
        assert_eq!(eps_xc(-1e-12), 0.0);
    }

    #[test]
    fn grid_energy_matches_manual_sum() {
        let rho = [0.2, 0.4, 0.0, 1.0];
        let dv = 0.5;
        let manual: f64 = rho.iter().map(|&r| r * eps_xc(r)).sum::<f64>() * dv;
        assert!((exc_energy(&rho, dv) - manual).abs() < 1e-15);
    }
}
