//! Electron density construction from wavefunction blocks.

use crate::PwBasis;
use ls3df_grid::RealField;
use ls3df_math::{c64, Matrix};
use rayon::prelude::*;

/// Bands per parallel work unit in [`compute_density`]. Fixed (not derived
/// from the thread count) so the floating-point summation tree is the same
/// no matter how the runtime schedules the blocks.
const BAND_BLOCK: usize = 8;

/// Builds `ρ(r) = Σ_b f_b·|ψ_b(r)|²` on the basis grid.
///
/// Band-parallel with a **fixed-order tree reduction**: bands are cut into
/// [`BAND_BLOCK`]-sized blocks, each block accumulates its partial density
/// in ascending band order, and the ordered partials are combined pairwise.
/// The summation tree depends only on the band count — never on the rayon
/// schedule — so repeated runs produce bit-identical densities.
pub fn compute_density(basis: &PwBasis, psi: &Matrix<c64>, occupations: &[f64]) -> RealField {
    assert_eq!(
        psi.rows(),
        occupations.len(),
        "density: occupation count mismatch"
    );
    assert_eq!(psi.cols(), basis.len(), "density: basis mismatch");
    let ngrid = basis.grid().len();
    let nb = psi.rows();
    let blocks: Vec<(usize, usize)> = (0..nb.div_ceil(BAND_BLOCK))
        .map(|i| (i * BAND_BLOCK, ((i + 1) * BAND_BLOCK).min(nb)))
        .collect();
    // `collect` keeps the partials in block order regardless of which
    // worker finished first.
    let mut partials: Vec<Vec<f64>> = blocks
        .into_par_iter()
        .map(|(lo, hi)| {
            let mut acc = vec![0.0_f64; ngrid];
            let mut buf = vec![c64::ZERO; ngrid];
            for b in lo..hi {
                let f = occupations[b];
                if f != 0.0 {
                    basis.wave_to_grid(psi.row(b), &mut buf);
                    for (a, v) in acc.iter_mut().zip(&buf) {
                        *a += f * v.norm_sqr();
                    }
                }
            }
            acc
        })
        .collect();
    // Pairwise combine adjacent partials until one remains: a balanced,
    // deterministic summation tree (also lower round-off than a left fold).
    while partials.len() > 1 {
        let mut next = Vec::with_capacity(partials.len().div_ceil(2));
        let mut it = partials.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
            }
            next.push(a);
        }
        partials = next;
    }
    let rho_data = partials.pop().unwrap_or_else(|| vec![0.0_f64; ngrid]);
    RealField::from_vec(basis.grid().clone(), rho_data)
}

/// Standard double-occupation vector: the lowest `n_electrons/2` bands get
/// occupation 2, the rest 0 (spin-unpolarized insulator filling).
pub fn insulator_occupations(n_bands: usize, n_electrons: f64) -> Vec<f64> {
    let n_occ = (n_electrons / 2.0).round() as usize;
    assert!(
        n_occ <= n_bands,
        "need at least {n_occ} bands for {n_electrons} electrons, have {n_bands}"
    );
    (0..n_bands)
        .map(|b| if b < n_occ { 2.0 } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ls3df_grid::Grid3;

    #[test]
    fn density_integrates_to_electron_count() {
        let grid = Grid3::cubic(10, 6.0);
        let basis = PwBasis::new(grid, 1.5);
        let nb = 4;
        let mut psi = Matrix::from_fn(nb, basis.len(), |i, j| {
            c64::new(((i * 31 + j * 7) as f64).sin(), ((i * 13 + j) as f64).cos())
        });
        ls3df_math::ortho::cholesky_orthonormalize(&mut psi, 1.0).unwrap();
        let occ = insulator_occupations(nb, 6.0); // 3 bands × 2
        let rho = compute_density(&basis, &psi, &occ);
        assert!(
            (rho.integrate() - 6.0).abs() < 1e-9,
            "N = {}",
            rho.integrate()
        );
        assert!(rho.min() >= -1e-12, "density must be non-negative");
    }

    #[test]
    fn single_g0_band_gives_uniform_density() {
        let grid = Grid3::cubic(8, 5.0);
        let basis = PwBasis::new(grid, 1.0);
        let mut psi = Matrix::zeros(1, basis.len());
        psi[(0, basis.g0_index())] = c64::ONE;
        let rho = compute_density(&basis, &psi, &[2.0]);
        let expect = 2.0 / basis.grid().volume();
        for &v in rho.as_slice() {
            assert!((v - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn occupation_filling() {
        assert_eq!(insulator_occupations(5, 6.0), vec![2.0, 2.0, 2.0, 0.0, 0.0]);
        assert_eq!(insulator_occupations(2, 4.0), vec![2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn too_few_bands_rejected() {
        let _ = insulator_occupations(2, 6.0);
    }
}
