//! Real-space Kleinman–Bylander projectors.
//!
//! Paper §V: "We found that for our fragment calculations, a reciprocal
//! q-space implementation of the nonlocal potential is faster than a
//! real-space implementation." To reproduce that engineering claim both
//! implementations exist here: the q-space one in
//! [`crate::hamiltonian::NonlocalPotential`] (two GEMMs over the full
//! basis) and this sphere-truncated real-space one (O(sphere points) per
//! atom, applied while ψ(r) is already on the grid for the local-potential
//! step). Real space wins asymptotically for large boxes; q-space wins at
//! fragment sizes — `cargo bench` and the `ablation` binary measure where.

use crate::PwBasis;
use ls3df_grid::{Grid3, RealField};
use ls3df_math::{c64, Matrix};
use rayon::prelude::*;

/// One real-space projector: the grid points within the cutoff sphere and
/// the (real, Gaussian) projector values there.
struct SphereProjector {
    /// Linear grid indices inside the sphere.
    points: Vec<usize>,
    /// Projector values at those points (normalized: Σ β²·dv = 1).
    values: Vec<f64>,
    /// KB strength (Hartree).
    e_kb: f64,
}

/// Real-space separable nonlocal potential.
pub struct RealSpaceNonlocal {
    projectors: Vec<SphereProjector>,
    grid: Grid3,
}

impl RealSpaceNonlocal {
    /// Builds sphere-truncated Gaussian projectors of width `rb[a]` and
    /// strength `e_kb[a]` at `positions`, truncating at
    /// `radius_factor · rb` (≈4–5 for ~1e-4 tail truncation).
    pub fn new(
        grid: &Grid3,
        positions: &[[f64; 3]],
        rb: &[f64],
        e_kb: &[f64],
        radius_factor: f64,
    ) -> Self {
        assert_eq!(positions.len(), rb.len());
        assert_eq!(positions.len(), e_kb.len());
        let dv = grid.dv();
        let projectors = positions
            .iter()
            .zip(rb.iter().zip(e_kb))
            .filter(|&(_, (_, &e))| e != 0.0)
            .map(|(&pos, (&rb_a, &e))| {
                let r_cut = radius_factor * rb_a;
                let mut points = Vec::new();
                let mut values = Vec::new();
                // Scan the bounding box of the sphere (minimum image).
                let h = grid.spacing();
                let n_half: [i64; 3] = std::array::from_fn(|d| (r_cut / h[d]).ceil() as i64 + 1);
                let center: [i64; 3] = std::array::from_fn(|d| (pos[d] / h[d]).round() as i64);
                let h_spacing = h;
                for dz in -n_half[2]..=n_half[2] {
                    for dy in -n_half[1]..=n_half[1] {
                        for dx in -n_half[0]..=n_half[0] {
                            let (ix, iy, iz) = (center[0] + dx, center[1] + dy, center[2] + dz);
                            let idx = grid.index_wrapped(ix, iy, iz);
                            // Unwrapped displacement from the atom to this
                            // *image* of the grid point — periodic images
                            // of the Gaussian must be summed, not folded.
                            let dxr = ix as f64 * h_spacing[0] - pos[0];
                            let dyr = iy as f64 * h_spacing[1] - pos[1];
                            let dzr = iz as f64 * h_spacing[2] - pos[2];
                            let r = (dxr * dxr + dyr * dyr + dzr * dzr).sqrt();
                            if r <= r_cut {
                                points.push(idx);
                                values.push((-r * r / (2.0 * rb_a * rb_a)).exp());
                            }
                        }
                    }
                }
                // Sum contributions landing on the same (wrapped) grid
                // index: that is the periodic image sum of the Gaussian —
                // exactly what the q-space form factor represents.
                let mut paired: Vec<(usize, f64)> = points.into_iter().zip(values).collect();
                paired.sort_by_key(|&(i, _)| i);
                let mut merged: Vec<(usize, f64)> = Vec::with_capacity(paired.len());
                for (i, v) in paired {
                    match merged.last_mut() {
                        Some((last_i, last_v)) if *last_i == i => *last_v += v,
                        _ => merged.push((i, v)),
                    }
                }
                let paired = merged;
                let norm2: f64 = paired.iter().map(|&(_, v)| v * v).sum::<f64>() * dv;
                let inv = 1.0 / norm2.sqrt().max(1e-300);
                SphereProjector {
                    points: paired.iter().map(|&(i, _)| i).collect(),
                    values: paired.iter().map(|&(_, v)| v * inv).collect(),
                    e_kb: e,
                }
            })
            .collect();
        RealSpaceNonlocal {
            projectors,
            grid: grid.clone(),
        }
    }

    /// Number of active projectors.
    pub fn len(&self) -> usize {
        self.projectors.len()
    }

    /// True if no projectors are active.
    pub fn is_empty(&self) -> bool {
        self.projectors.is_empty()
    }

    /// Average grid points per projector sphere (the real-space cost
    /// driver).
    pub fn avg_sphere_points(&self) -> f64 {
        if self.projectors.is_empty() {
            return 0.0;
        }
        self.projectors
            .iter()
            .map(|p| p.points.len())
            .sum::<usize>() as f64
            / self.projectors.len() as f64
    }

    /// Applies `V_NL` to ψ **on the grid** in place:
    /// `ψ(r) → ψ(r) + Σ_a E_a·β_a(r)·(dv·Σ_{r'} β_a(r')·ψ(r'))`.
    pub fn accumulate_grid(&self, psi_grid: &mut [c64]) {
        assert_eq!(psi_grid.len(), self.grid.len());
        let dv = self.grid.dv();
        // All overlaps must come from the *input* ψ: accumulating one
        // projector before computing the next overlap would contaminate
        // it wherever projector spheres overlap.
        let coefs: Vec<c64> = self
            .projectors
            .iter()
            .map(|p| {
                let mut overlap = c64::ZERO;
                for (&idx, &v) in p.points.iter().zip(&p.values) {
                    overlap = overlap.mul_add(psi_grid[idx], c64::real(v));
                }
                overlap.scale(dv * p.e_kb)
            })
            .collect();
        for (p, coef) in self.projectors.iter().zip(coefs) {
            for (&idx, &v) in p.points.iter().zip(&p.values) {
                psi_grid[idx] = psi_grid[idx].mul_add(coef, c64::real(v));
            }
        }
    }
}

/// Applies `H = −½∇² + V_loc + V_NL(real space)` to a band block,
/// fusing the nonlocal application into the same grid pass as the local
/// potential (the real-space implementation the paper benchmarked against
/// its q-space choice).
pub fn apply_block_realspace(
    basis: &PwBasis,
    v_local: &RealField,
    nl: &RealSpaceNonlocal,
    psi: &Matrix<c64>,
) -> Matrix<c64> {
    let nb = psi.rows();
    let npw = psi.cols();
    assert_eq!(npw, basis.len());
    let ngrid = basis.grid().len();
    let g2 = basis.g2();
    let v = v_local.as_slice();
    let mut hpsi = Matrix::zeros(nb, npw);
    // reduce-audit: one band per fixed-size chunk (npw, a problem
    // dimension — never thread count); the per-band projector sums run
    // sequentially inside the closure in projector order, so output is
    // bit-identical across LS3DF_THREADS.
    hpsi.as_mut_slice()
        .par_chunks_mut(npw)
        .zip(psi.as_slice().par_chunks(npw))
        .for_each(|(h_row, p_row)| {
            let mut buf = vec![c64::ZERO; ngrid];
            basis.wave_to_grid(p_row, &mut buf);
            // Nonlocal first (projectors act on ψ, not V·ψ)…
            let mut vnl_psi = buf.clone();
            for x in vnl_psi.iter_mut() {
                *x = c64::ZERO;
            }
            // …compute V_NL·ψ into vnl_psi by difference trick: copy ψ,
            // accumulate, subtract.
            let mut work = buf.clone();
            nl.accumulate_grid(&mut work);
            for (o, (&w, &b)) in vnl_psi.iter_mut().zip(work.iter().zip(buf.iter())) {
                *o = w - b;
            }
            // Local potential on ψ.
            for (b, &vv) in buf.iter_mut().zip(v) {
                *b = b.scale(vv);
            }
            // Sum the grid-space parts.
            for (b, &nlv) in buf.iter_mut().zip(&vnl_psi) {
                *b += nlv;
            }
            basis.grid_to_wave(&mut buf, h_row);
            for ((h, &p), &g2i) in h_row.iter_mut().zip(p_row).zip(g2) {
                *h += p.scale(0.5 * g2i);
            }
        });
    hpsi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::{Hamiltonian, NonlocalPotential};
    use ls3df_math::ortho::cholesky_orthonormalize;

    fn setup() -> (PwBasis, RealField, Vec<[f64; 3]>, Vec<f64>, Vec<f64>) {
        let grid = Grid3::cubic(16, 12.0);
        let basis = PwBasis::new(grid.clone(), 1.5);
        let v = RealField::from_fn(grid, |r| {
            0.1 * (r[0] - 6.0) * (-((r[1] - 6.0) / 4.0).powi(2)).exp()
        });
        let positions = vec![[6.0, 6.0, 6.0], [3.0, 9.0, 5.0]];
        // Wide projectors: e^{−q²r_b²/2} ≈ 2e-3 at the basis edge, so the
        // q-space (basis-truncated) and real-space (grid-sampled) versions
        // describe the same operator. Narrow projectors at low cutoff
        // genuinely differ — exactly the trade-off the paper weighed in §V.
        let rb = vec![2.0, 1.8];
        let e_kb = vec![0.8, -0.5];
        (basis, v, positions, rb, e_kb)
    }

    fn rand_block(nb: usize, npw: usize, seed: u64) -> Matrix<c64> {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let mut m = Matrix::from_fn(nb, npw, |_, _| c64::new(next(), next()));
        cholesky_orthonormalize(&mut m, 1.0).unwrap();
        m
    }

    #[test]
    fn real_space_matches_q_space_application() {
        // With a generous sphere radius and adequate grid, the two
        // implementations of the same Gaussian projector must agree on
        // H·ψ to basis-truncation accuracy.
        let (basis, v, positions, rb, e_kb) = setup();
        let nl_q = NonlocalPotential::new(
            &basis,
            &positions,
            |a, q| (-q * q * rb[a] * rb[a] / 2.0).exp(),
            &e_kb,
        );
        let h_q = Hamiltonian::new(&basis, v.clone(), &nl_q);
        let nl_r = RealSpaceNonlocal::new(basis.grid(), &positions, &rb, &e_kb, 5.0);
        assert_eq!(nl_r.len(), 2);

        let psi = rand_block(3, basis.len(), 5);
        let hq = h_q.apply_block(&psi);
        let hr = apply_block_realspace(&basis, &v, &nl_r, &psi);
        let mut max_err = 0.0_f64;
        let mut max_val = 0.0_f64;
        for i in 0..hq.rows() {
            for j in 0..hq.cols() {
                max_err = max_err.max((hq[(i, j)] - hr[(i, j)]).abs());
                max_val = max_val.max(hq[(i, j)].abs());
            }
        }
        // The q-space projector is the exact basis projection of the
        // Gaussian; the real-space one carries grid-sampling error — a few
        // percent agreement at this resolution.
        assert!(
            max_err < 0.05 * max_val,
            "max |Δ(H·ψ)| = {max_err} vs scale {max_val}"
        );
    }

    #[test]
    fn eigenvalues_agree_between_implementations() {
        let (basis, v, positions, rb, e_kb) = setup();
        let nl_q = NonlocalPotential::new(
            &basis,
            &positions,
            |a, q| (-q * q * rb[a] * rb[a] / 2.0).exp(),
            &e_kb,
        );
        let h_q = Hamiltonian::new(&basis, v.clone(), &nl_q);
        let mut psi = rand_block(4, basis.len(), 9);
        let opts = crate::SolverOptions {
            max_iter: 150,
            tol: 1e-7,
            ..Default::default()
        };
        let stats_q = crate::solve_all_band(&h_q, &mut psi, &opts);

        // Rayleigh quotients of the q-space eigenvectors under the
        // real-space H: must match the q-space eigenvalues closely.
        let nl_r = RealSpaceNonlocal::new(basis.grid(), &positions, &rb, &e_kb, 5.0);
        let hr = apply_block_realspace(&basis, &v, &nl_r, &psi);
        for b in 0..4 {
            let e_r = ls3df_math::vec_ops::dotc(psi.row(b), hr.row(b)).re;
            assert!(
                (e_r - stats_q.eigenvalues[b]).abs() < 5e-3,
                "band {b}: q-space {} vs real-space {}",
                stats_q.eigenvalues[b],
                e_r
            );
        }
    }

    #[test]
    fn sphere_truncation_controls_cost() {
        let (basis, _, positions, rb, e_kb) = setup();
        let tight = RealSpaceNonlocal::new(basis.grid(), &positions, &rb, &e_kb, 3.0);
        let wide = RealSpaceNonlocal::new(basis.grid(), &positions, &rb, &e_kb, 5.0);
        assert!(tight.avg_sphere_points() < wide.avg_sphere_points());
        assert!(tight.avg_sphere_points() > 10.0);
        // Sphere points ≪ grid points: that's the real-space selling point.
        assert!(wide.avg_sphere_points() < basis.grid().len() as f64);
    }

    #[test]
    fn zero_strength_projectors_skipped() {
        let (basis, _, positions, rb, _) = setup();
        let nl = RealSpaceNonlocal::new(basis.grid(), &positions, &rb, &[0.0, 0.0], 4.0);
        assert!(nl.is_empty());
        let mut grid_psi = vec![c64::ONE; basis.grid().len()];
        let before = grid_psi.clone();
        nl.accumulate_grid(&mut grid_psi);
        assert_eq!(grid_psi, before);
    }
}
