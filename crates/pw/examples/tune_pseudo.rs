//! Pseudopotential tuning driver: checks that the model Zn/Te/O potentials
//! produce the qualitative band structure the LS3DF science results need
//! (ZnTe gap; O-induced states inside the gap).
//!
//! Run: `cargo run -p ls3df-pw --example tune_pseudo --release [ecut_ha]`

use ls3df_atoms::{znte_supercell, Species, ZNTE_LATTICE};
use ls3df_pseudo::params_for;
use ls3df_pw::{grid_for, scf, DftSystem, PwAtom, ScfOptions};

fn to_pw_atoms(s: &ls3df_atoms::Structure) -> Vec<PwAtom> {
    s.atoms
        .iter()
        .map(|a| {
            let p = params_for(a.species);
            PwAtom {
                pos: a.pos,
                local: p.local,
                kb_rb: p.kb.rb,
                kb_energy: p.kb.e_kb,
            }
        })
        .collect()
}

fn main() {
    let ecut: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3.0);
    let opts = ScfOptions {
        n_extra_bands: 6,
        max_scf: 60,
        tol: 1e-3,
        ..Default::default()
    };

    // 1) Pristine ZnTe, one conventional cell (8 atoms, 32 electrons).
    let s = znte_supercell([1, 1, 1], ZNTE_LATTICE);
    let sys = DftSystem {
        grid: grid_for(s.lengths, ecut),
        ecut,
        atoms: to_pw_atoms(&s),
    };
    println!(
        "ZnTe 1x1x1: {} atoms, {} electrons, grid {:?}, ecut {} Ha",
        s.len(),
        sys.n_electrons(),
        sys.grid.dims,
        ecut
    );
    let t0 = std::time::Instant::now();
    let res = scf(&sys, &opts);
    println!(
        "  SCF: converged={} iters={} E={:.6} Ha ({:.1}s)",
        res.converged,
        res.history.len(),
        res.total_energy,
        t0.elapsed().as_secs_f64()
    );
    let n_occ = sys.n_occupied();
    println!("  bands around gap (occ={n_occ}):");
    for b in n_occ.saturating_sub(3)..(n_occ + 3).min(res.eigenvalues.len()) {
        println!(
            "    band {b:3} ε = {:+.4} Ha {}",
            res.eigenvalues[b],
            if b < n_occ { "(occ)" } else { "(emp)" }
        );
    }
    let gap = res.band_gap().unwrap();
    println!("  ZnTe gap = {:.4} Ha = {:.2} eV", gap, gap * 27.2114);

    // 2) One O substitution in a 2×1×1 cell (16 atoms): where do the O
    //    states sit relative to the ZnTe band edges?
    let mut s2 = znte_supercell([2, 1, 1], ZNTE_LATTICE);
    let te_idx = s2
        .atoms
        .iter()
        .position(|a| a.species == Species::Te)
        .unwrap();
    s2.atoms[te_idx].species = Species::O;
    ls3df_atoms::relax(&mut s2, 1e-4, 2000);
    let sys2 = DftSystem {
        grid: grid_for(s2.lengths, ecut),
        ecut,
        atoms: to_pw_atoms(&s2),
    };
    println!(
        "\nZnTe:O {} ({} electrons)",
        s2.formula(),
        sys2.n_electrons()
    );
    let t0 = std::time::Instant::now();
    let res2 = scf(&sys2, &opts);
    let n_occ2 = sys2.n_occupied();
    println!(
        "  SCF: converged={} iters={} ({:.1}s)",
        res2.converged,
        res2.history.len(),
        t0.elapsed().as_secs_f64()
    );
    for b in n_occ2.saturating_sub(4)..(n_occ2 + 4).min(res2.eigenvalues.len()) {
        println!(
            "    band {b:3} ε = {:+.4} Ha {}",
            res2.eigenvalues[b],
            if b < n_occ2 { "(occ)" } else { "(emp)" }
        );
    }
    let gap2 = res2.band_gap().unwrap();
    println!("  gap with O = {:.4} Ha = {:.2} eV", gap2, gap2 * 27.2114);
    println!(
        "  (want: O gap < ZnTe gap — O state split off below the CBM; got {} < {}: {})",
        gap2,
        gap,
        gap2 < gap
    );
}
