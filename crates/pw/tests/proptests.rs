//! Property-based tests for the planewave engine.

use ls3df_grid::{Grid3, RealField};
use ls3df_math::gemm::matmul_nh;
use ls3df_math::{c64, Matrix};
use ls3df_pw::{Hamiltonian, NonlocalPotential, PwBasis};
use proptest::prelude::*;

fn basis_and_potential(n: usize, l: f64, amp: f64, seed: u64) -> (PwBasis, RealField) {
    let grid = Grid3::cubic(n, l);
    let basis = PwBasis::new(grid.clone(), 1.0);
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
    };
    let v = RealField::from_fn(grid, |_| amp * next());
    (basis, v)
}

fn rand_block(nb: usize, npw: usize, seed: u64) -> Matrix<c64> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
    };
    let mut m = Matrix::from_fn(nb, npw, |_, _| c64::new(next(), next()));
    ls3df_math::ortho::cholesky_orthonormalize(&mut m, 1.0).unwrap();
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn hamiltonian_hermitian_for_any_real_potential(
        amp in 0.0..3.0f64,
        seed in 1u64..500,
    ) {
        let (basis, v) = basis_and_potential(8, 7.0, amp, seed);
        let nl = NonlocalPotential::new(
            &basis,
            &[[2.0, 3.0, 1.0]],
            |_, q| (-q * q / 2.0).exp(),
            &[0.7],
        );
        let h = Hamiltonian::new(&basis, v, &nl);
        let psi = rand_block(4, basis.len(), seed.wrapping_add(7));
        let hpsi = h.apply_block(&psi);
        let m = matmul_nh(&psi, &hpsi);
        prop_assert!(m.hermiticity_error() < 1e-9, "err = {}", m.hermiticity_error());
    }

    #[test]
    fn hamiltonian_is_linear(seed in 1u64..500, alpha in -2.0..2.0f64) {
        let (basis, v) = basis_and_potential(8, 6.0, 0.5, seed);
        let nl = NonlocalPotential::none(&basis);
        let h = Hamiltonian::new(&basis, v, &nl);
        let a = rand_block(2, basis.len(), seed);
        let b = rand_block(2, basis.len(), seed.wrapping_add(1));
        // H(a + α·b) = H·a + α·H·b
        let mut combo = a.clone();
        combo.add_scaled(c64::real(alpha), &b);
        let lhs = h.apply_block(&combo);
        let ha = h.apply_block(&a);
        let hb = h.apply_block(&b);
        for i in 0..lhs.rows() {
            for j in 0..lhs.cols() {
                let rhs = ha[(i, j)] + hb[(i, j)].scale(alpha);
                prop_assert!((lhs[(i, j)] - rhs).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn density_nonnegative_and_normalized(seed in 1u64..500, nb in 1usize..5) {
        let (basis, _) = basis_and_potential(8, 6.0, 0.0, seed);
        let psi = rand_block(nb, basis.len(), seed);
        let occ: Vec<f64> = (0..nb).map(|b| if b % 2 == 0 { 2.0 } else { 1.0 }).collect();
        let n_expect: f64 = occ.iter().sum();
        let rho = ls3df_pw::density::compute_density(&basis, &psi, &occ);
        prop_assert!(rho.min() >= -1e-12);
        prop_assert!((rho.integrate() - n_expect).abs() < 1e-9);
    }

    #[test]
    fn hartree_potential_is_linear_functional(seed in 1u64..200) {
        let grid = Grid3::cubic(8, 5.0);
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let r1 = RealField::from_fn(grid.clone(), |_| next());
        let r2 = RealField::from_fn(grid.clone(), |_| next());
        let v1 = ls3df_pw::hartree::hartree_potential(&r1);
        let v2 = ls3df_pw::hartree::hartree_potential(&r2);
        let mut sum = r1.clone();
        sum.add_scaled(1.5, &r2);
        let v_sum = ls3df_pw::hartree::hartree_potential(&sum);
        let mut expect = v1.clone();
        expect.add_scaled(1.5, &v2);
        prop_assert!(v_sum.diff(&expect).max_abs() < 1e-9);
    }

    #[test]
    fn xc_potential_monotone_in_density(rho1 in 0.001..5.0f64, factor in 1.01..5.0f64) {
        // v_xc is negative and deepens with density.
        let v1 = ls3df_pw::xc::v_xc(rho1);
        let v2 = ls3df_pw::xc::v_xc(rho1 * factor);
        prop_assert!(v1 < 0.0);
        prop_assert!(v2 < v1);
    }
}
