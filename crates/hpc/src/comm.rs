//! Mechanistic communication model for Gen_VF / Gen_dens.
//!
//! The cost model in [`crate::cost`] uses a calibrated per-atom constant;
//! this module derives the same quantity mechanistically, reproducing the
//! paper's optimization sequence:
//!
//! * **file I/O** — every fragment potential/density crosses the parallel
//!   filesystem (the original proof-of-concept implementation);
//! * **collectives** — the global grid is gathered/broadcast through
//!   tree-structured collectives (optimizations #2/#3);
//! * **point-to-point** — each group exchanges only its fragments' box
//!   overlaps with the slab owners via isend/irecv (the Intrepid version,
//!   "these two routines together comprised less than 2% of the total run
//!   time").

use crate::machine::CommAlgo;

/// Network/filesystem parameters of a modeled interconnect.
#[derive(Clone, Copy, Debug)]
pub struct Network {
    /// Per-message latency (s).
    pub latency: f64,
    /// Per-link bandwidth (bytes/s).
    pub bandwidth: f64,
    /// Sustained parallel-filesystem bandwidth (bytes/s), shared.
    pub fs_bandwidth: f64,
    /// Filesystem per-file open/close overhead (s).
    pub fs_latency: f64,
}

impl Network {
    /// Cray XT4 SeaStar2-class parameters.
    pub fn xt4() -> Self {
        Network {
            latency: 6e-6,
            bandwidth: 2.0e9,
            fs_bandwidth: 4.0e9,
            fs_latency: 8e-3,
        }
    }

    /// BlueGene/P torus + collective network parameters.
    pub fn bluegene_p() -> Self {
        Network {
            latency: 3e-6,
            bandwidth: 0.425e9,
            fs_bandwidth: 4.0e9,
            fs_latency: 8e-3,
        }
    }
}

/// A Gen_VF/Gen_dens communication problem: moving every fragment's box
/// data between the global-grid owners and the fragment groups, once per
/// direction per SCF iteration.
#[derive(Clone, Copy, Debug)]
pub struct CommProblem {
    /// Global grid points.
    pub global_points: usize,
    /// Number of fragments.
    pub n_fragments: usize,
    /// Average fragment-box grid points.
    pub avg_box_points: usize,
    /// Total cores.
    pub cores: usize,
    /// Cores per group.
    pub np: usize,
}

impl CommProblem {
    /// Builds the problem for an `m`-piece LS3DF decomposition with
    /// `piece_pts` grid points per piece per dimension and a buffer of
    /// `buffer_pts`.
    pub fn for_decomposition(
        m: [usize; 3],
        piece_pts: usize,
        buffer_pts: usize,
        cores: usize,
        np: usize,
    ) -> Self {
        let pieces = m[0] * m[1] * m[2];
        let global_points = pieces * piece_pts.pow(3);
        // Average over the 8 fragment types: sizes {1,2}³ + 2·buffer.
        let mut total_box = 0usize;
        for s1 in [1usize, 2] {
            for s2 in [1usize, 2] {
                for s3 in [1usize, 2] {
                    total_box += (s1 * piece_pts + 2 * buffer_pts)
                        * (s2 * piece_pts + 2 * buffer_pts)
                        * (s3 * piece_pts + 2 * buffer_pts);
                }
            }
        }
        CommProblem {
            global_points,
            n_fragments: 8 * pieces,
            avg_box_points: total_box / 8,
            cores,
            np,
        }
    }

    /// Total bytes moved per direction (8-byte reals).
    pub fn total_bytes(&self) -> f64 {
        8.0 * (self.n_fragments * self.avg_box_points) as f64
    }

    /// Time (s) for one Gen_VF + one Gen_dens under the given algorithm.
    pub fn time(&self, algo: CommAlgo, net: &Network) -> f64 {
        let bytes = self.total_bytes();
        let n_groups = (self.cores / self.np).max(1);
        match algo {
            CommAlgo::FileIo => {
                // Every fragment writes + reads its box through the shared
                // filesystem; two files per fragment per direction.
                let files = 4.0 * self.n_fragments as f64;
                files * net.fs_latency + 2.0 * bytes / net.fs_bandwidth
            }
            CommAlgo::Collective => {
                // Gather the global grid to a root and broadcast fragment
                // slices: tree depth log2(P), whole-grid payloads replicated
                // per stage.
                let stages = (self.cores as f64).log2().ceil();
                let global_bytes = 8.0 * self.global_points as f64;
                2.0 * (stages * net.latency + (global_bytes + bytes) / net.bandwidth)
            }
            CommAlgo::PointToPoint => {
                // Each group exchanges only its own boxes with the slab
                // owners: a few messages per fragment, payloads in
                // parallel across groups.
                let msgs_per_frag = 8.0; // box overlaps a handful of slabs
                let msgs = msgs_per_frag * self.n_fragments as f64 / n_groups as f64;
                let payload = bytes / n_groups as f64;
                2.0 * (msgs * net.latency + payload / net.bandwidth)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> CommProblem {
        // The paper's 8×6×9 system at production resolution on 8,640 cores.
        CommProblem::for_decomposition([8, 6, 9], 40, 12, 8640, 40)
    }

    #[test]
    fn optimization_sequence_ordering() {
        let p = problem();
        let net = Network::xt4();
        let io = p.time(CommAlgo::FileIo, &net);
        let col = p.time(CommAlgo::Collective, &net);
        let p2p = p.time(CommAlgo::PointToPoint, &net);
        assert!(io > col, "file I/O {io} must exceed collectives {col}");
        assert!(
            col > p2p,
            "collectives {col} must exceed point-to-point {p2p}"
        );
        // Order-of-magnitude shape: the paper saw ~10× from dropping file
        // I/O and a further ~6× from isend/irecv.
        assert!(io / col > 3.0, "I/O→collective ratio {}", io / col);
        assert!(col / p2p > 3.0, "collective→p2p ratio {}", col / p2p);
    }

    #[test]
    fn paper_scale_magnitudes() {
        // Gen_VF + Gen_dens ≈ seconds with collectives (paper: 2.5 + 2.2 s
        // on 8,000 cores), sub-second with p2p (0.37 + 0.56 s at 131,072).
        let p = problem();
        let net = Network::xt4();
        let col = p.time(CommAlgo::Collective, &net);
        assert!((0.5..30.0).contains(&col), "collective time {col}");
        let big = CommProblem::for_decomposition([16, 16, 8], 32, 10, 131_072, 64);
        let p2p = big.time(CommAlgo::PointToPoint, &Network::bluegene_p());
        assert!((0.01..5.0).contains(&p2p), "p2p time {p2p}");
    }

    #[test]
    fn p2p_scales_out_with_groups() {
        let net = Network::xt4();
        let small = CommProblem::for_decomposition([8, 8, 8], 40, 12, 4096, 64);
        let large = CommProblem::for_decomposition([8, 8, 8], 40, 12, 32768, 64);
        // 8× the groups → ~8× faster p2p exchange (same total data).
        let ratio =
            small.time(CommAlgo::PointToPoint, &net) / large.time(CommAlgo::PointToPoint, &net);
        assert!((4.0..12.0).contains(&ratio), "scale-out ratio {ratio}");
        // Collectives barely improve (global payload is fixed).
        let col_ratio =
            small.time(CommAlgo::Collective, &net) / large.time(CommAlgo::Collective, &net);
        assert!(col_ratio < 1.5, "collective ratio {col_ratio}");
    }

    #[test]
    fn bytes_scale_linearly_with_system() {
        let a = CommProblem::for_decomposition([4, 4, 4], 40, 12, 4096, 64);
        let b = CommProblem::for_decomposition([8, 8, 4], 40, 12, 4096, 64);
        let ratio = b.total_bytes() / a.total_bytes();
        assert!(
            (ratio - 4.0).abs() < 0.01,
            "bytes ratio {ratio} for 4× pieces"
        );
    }
}
