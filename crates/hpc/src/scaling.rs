//! Figure 3–5 series: strong scaling, efficiency vs concurrency, and
//! weak scaling across machines.

use crate::amdahl::{fit_amdahl, AmdahlFit};
use crate::cost::{iteration_time, pct_peak, sustained_flops, Problem};
use crate::machine::MachineSpec;

/// One point of a strong-scaling curve.
#[derive(Clone, Copy, Debug)]
pub struct StrongScalingPoint {
    /// Cores used.
    pub cores: usize,
    /// Speedup relative to the baseline core count.
    pub speedup_ls3df: f64,
    /// Speedup of the PEtot_F part alone.
    pub speedup_petot: f64,
    /// Modeled sustained Tflop/s.
    pub tflops: f64,
}

/// The paper's Fig. 3 experiment: the 3,456-atom 8×6×9 system, Np = 40,
/// concurrency swept from 1,080 to `max_cores` cores. Returns the curve
/// plus Amdahl fits for both LS3DF and PEtot_F (the paper's model lines),
/// or `None` when the core counts make the Amdahl fit degenerate.
pub fn strong_scaling(
    machine: &MachineSpec,
    problem: &Problem,
    np: usize,
    core_counts: &[usize],
) -> Option<(Vec<StrongScalingPoint>, AmdahlFit, AmdahlFit)> {
    assert!(!core_counts.is_empty());
    let base = core_counts[0];
    let base_t = iteration_time(machine, problem, base, np);
    let mut points = Vec::with_capacity(core_counts.len());
    let mut perf_ls3df = Vec::new();
    let mut perf_petot = Vec::new();
    let cores_f: Vec<f64> = core_counts.iter().map(|&c| c as f64).collect();
    for &cores in core_counts {
        let t = iteration_time(machine, problem, cores, np);
        points.push(StrongScalingPoint {
            cores,
            speedup_ls3df: base_t.total() / t.total(),
            speedup_petot: base_t.petot_f / t.petot_f,
            tflops: sustained_flops(machine, problem, cores, np) / 1e12,
        });
        let flops = machine.flops_per_atom_iter * problem.atoms() as f64;
        perf_ls3df.push(flops / t.total());
        perf_petot.push(flops / t.petot_f);
    }
    let fit_ls3df = fit_amdahl(&cores_f, &perf_ls3df)?;
    let fit_petot = fit_amdahl(&cores_f, &perf_petot)?;
    Some((points, fit_ls3df, fit_petot))
}

/// One point of the Fig. 4 efficiency scatter.
#[derive(Clone, Copy, Debug)]
pub struct EfficiencyPoint {
    /// Atoms simulated.
    pub atoms: usize,
    /// Cores used.
    pub cores: usize,
    /// Cores per group.
    pub np: usize,
    /// Fraction of peak.
    pub efficiency: f64,
}

/// Fig. 4: computational efficiency for a set of (problem, cores, np)
/// runs on one machine.
pub fn efficiency_scatter(
    machine: &MachineSpec,
    runs: &[(Problem, usize, usize)],
) -> Vec<EfficiencyPoint> {
    runs.iter()
        .map(|&(p, cores, np)| EfficiencyPoint {
            atoms: p.atoms(),
            cores,
            np,
            efficiency: pct_peak(machine, &p, cores, np),
        })
        .collect()
}

/// One point of the Fig. 5 weak-scaling curves.
#[derive(Clone, Copy, Debug)]
pub struct WeakScalingPoint {
    /// Cores used.
    pub cores: usize,
    /// Atoms simulated (constant atoms/core ratio along a curve).
    pub atoms: usize,
    /// Modeled sustained Tflop/s.
    pub tflops: f64,
}

/// Fig. 5: weak scaling (constant atoms-per-core) on one machine.
pub fn weak_scaling(
    machine: &MachineSpec,
    runs: &[(Problem, usize, usize)],
) -> Vec<WeakScalingPoint> {
    runs.iter()
        .map(|&(p, cores, np)| WeakScalingPoint {
            cores,
            atoms: p.atoms(),
            tflops: sustained_flops(machine, &p, cores, np) / 1e12,
        })
        .collect()
}

/// The Fig. 3 core counts (Ng 27 → 432 at Np = 40).
pub fn fig3_core_counts() -> Vec<usize> {
    vec![1080, 2160, 4320, 8640, 17280]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_speedups_match_paper() {
        // Paper: at 17,280 cores (vs 1,080 baseline = 16× cores), speedup
        // 15.3 (95.8% efficiency) for PEtot_F and 13.8 (86.3%) for LS3DF.
        let m = MachineSpec::franklin();
        let p = Problem::new(8, 6, 9);
        let (points, _, _) = strong_scaling(&m, &p, 40, &fig3_core_counts()).unwrap();
        let last = points.last().unwrap();
        assert!(
            (last.speedup_petot - 15.3).abs() < 0.7,
            "PEtot_F speedup {}",
            last.speedup_petot
        );
        assert!(
            (last.speedup_ls3df - 13.8).abs() < 1.0,
            "LS3DF speedup {}",
            last.speedup_ls3df
        );
        // LS3DF always at or below the PEtot_F curve.
        for pt in &points {
            assert!(pt.speedup_ls3df <= pt.speedup_petot + 1e-9);
        }
    }

    #[test]
    fn amdahl_fit_parameters_in_paper_range() {
        // Paper fit: α = 1/362,000 (PEtot_F), 1/101,000 (LS3DF), and an
        // effective single-core rate of 2.39 Gflop/s.
        let m = MachineSpec::franklin();
        let p = Problem::new(8, 6, 9);
        let (_, fit_ls3df, fit_petot) = strong_scaling(&m, &p, 40, &fig3_core_counts()).unwrap();
        assert!(
            fit_petot.alpha < fit_ls3df.alpha,
            "PEtot_F has less serial work"
        );
        assert!(
            fit_ls3df.alpha > 1.0 / 400_000.0 && fit_ls3df.alpha < 1.0 / 40_000.0,
            "LS3DF α = {}",
            fit_ls3df.alpha
        );
        let gf = fit_petot.p_serial / 1e9;
        assert!((1.0..4.0).contains(&gf), "P_s = {gf} Gflop/s (paper: 2.39)");
    }

    #[test]
    fn weak_scaling_is_straight_on_loglog() {
        // Fig. 5: "fairly straight lines" — Tflop/s roughly ∝ cores at
        // constant atoms/core.
        let m = MachineSpec::intrepid();
        let runs = [
            (Problem::new(4, 4, 4), 4096, 64),
            (Problem::new(8, 4, 4), 8192, 64),
            (Problem::new(8, 8, 4), 16384, 64),
            (Problem::new(8, 8, 8), 32768, 64),
            (Problem::new(16, 8, 8), 65536, 64),
            (Problem::new(16, 16, 8), 131072, 64),
        ];
        let pts = weak_scaling(&m, &runs);
        for w in pts.windows(2) {
            let slope =
                (w[1].tflops / w[0].tflops).log2() / (w[1].cores as f64 / w[0].cores as f64).log2();
            assert!((0.8..=1.05).contains(&slope), "log-log slope {slope}");
        }
        // Ordering across machines at their largest runs: Intrepid tops.
        let f = MachineSpec::franklin();
        let franklin_best = sustained_flops(&f, &Problem::new(12, 12, 12), 17280, 10) / 1e12;
        assert!(pts.last().unwrap().tflops > franklin_best);
    }

    #[test]
    fn efficiency_scatter_matches_fig4_shape() {
        let m = MachineSpec::franklin();
        let runs = [
            (Problem::new(3, 3, 3), 270, 10),
            (Problem::new(6, 6, 6), 4320, 20),
            (Problem::new(12, 12, 12), 17280, 10),
        ];
        let pts = efficiency_scatter(&m, &runs);
        // All in the paper's 30–45% band, decreasing with concurrency.
        for p in &pts {
            assert!((0.30..0.45).contains(&p.efficiency), "{p:?}");
        }
        assert!(pts[0].efficiency > pts[2].efficiency);
    }
}
