//! Machine models for the three systems the paper benchmarks on.
//!
//! **Substitution note (DESIGN.md):** the petascale machines are not
//! available, so Table I and Figs. 3–5 are regenerated from an analytic
//! performance model whose constants come from (a) the machine
//! specifications in paper §VI and (b) the timing breakdowns the paper
//! itself reports (§IV). Shapes — who wins, how efficiency decays with
//! concurrency and group size — are the reproduction target, not absolute
//! wall-clock on hardware we do not have.

/// Communication algorithm used by Gen_VF / Gen_dens (the paper's
/// optimization sequence: file I/O → in-memory collectives → point-to-point
/// isend/irecv).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommAlgo {
    /// Original proof-of-concept: data passed through the filesystem.
    FileIo,
    /// In-memory MPI collectives (optimizations #2/#3).
    Collective,
    /// Point-to-point isend/ireceive (the Intrepid improvement).
    PointToPoint,
}

/// A modeled machine.
#[derive(Clone, Debug)]
pub struct MachineSpec {
    /// Machine name.
    pub name: &'static str,
    /// Total cores available.
    pub total_cores: usize,
    /// Peak flop rate per core (flop/s, 64-bit).
    pub peak_per_core: f64,
    /// LS3DF flop count per atom per SCF iteration at this machine's
    /// production settings (50 Ry/40³ on the XT4s, 40 Ry/32³ on BG/P).
    pub flops_per_atom_iter: f64,
    /// Fraction of peak the PEtot_F kernel sustains within one small
    /// processor group (paper: ~45% on Franklin, lower on Jaguar's
    /// memory-starved quad cores, ~32% on BG/P).
    pub group_eff_base: f64,
    /// Group-size rolloff scale: efficiency falls as
    /// `1/(1 + (Np/np_rolloff)^np_rolloff_exp)` — the paper observes
    /// Np = 80 dropping Jaguar from 25.6% to 20.9%.
    pub np_rolloff: f64,
    /// Rolloff exponent (machine-specific; calibrated).
    pub np_rolloff_exp: f64,
    /// Serial (Amdahl) fraction of PEtot_F work (paper fit: 1/362,000 on
    /// Franklin).
    pub serial_fraction: f64,
    /// Gen_VF + Gen_dens + GENPOT time per atom per iteration (seconds)
    /// for the collective algorithm; roughly concurrency-independent
    /// because the global-grid data volume is fixed by the system size.
    pub comm_seconds_per_atom: f64,
    /// Communication algorithm in use.
    pub comm: CommAlgo,
}

impl MachineSpec {
    /// Franklin: NERSC Cray XT4, 9,660 dual-core 2.6 GHz Opteron nodes,
    /// 101.5 Tflop/s peak.
    pub fn franklin() -> Self {
        MachineSpec {
            name: "Franklin (Cray XT4)",
            total_cores: 19_320,
            peak_per_core: 101.5e12 / 19_320.0,
            // Calibrated from the sustained run: 31.35 Tflop/s × 60 s/iter
            // on the 3,456-atom system → 5.44e11 flop/atom/iter.
            flops_per_atom_iter: 5.44e11,
            group_eff_base: 0.410,
            np_rolloff: 250.0,
            np_rolloff_exp: 2.5,
            serial_fraction: 1.0 / 200_000.0,
            // Calibrated against the Table I Franklin rows; same order as
            // the §IV breakdown (Gen_VF 2.5 s + Gen_dens 2.2 s + GENPOT
            // 0.4 s on the 2,000-atom CdSe rod ≈ 2.5e-3 s/atom for the
            // pre-optimization code).
            comm_seconds_per_atom: 0.8e-3,
            comm: CommAlgo::Collective,
        }
    }

    /// Jaguar: NCCS Cray XT4, 7,832 quad-core 2.1 GHz Opteron nodes,
    /// ~263 Tflop/s peak.
    pub fn jaguar() -> Self {
        MachineSpec {
            name: "Jaguar (Cray XT4)",
            total_cores: 31_328,
            peak_per_core: 263.0e12 / 31_328.0,
            flops_per_atom_iter: 5.44e11,
            // Quad-core memory contention: lower kernel efficiency.
            group_eff_base: 0.280,
            np_rolloff: 160.0,
            np_rolloff_exp: 3.0,
            serial_fraction: 1.0 / 200_000.0,
            comm_seconds_per_atom: 2.0e-4,
            comm: CommAlgo::Collective,
        }
    }

    /// Intrepid: ALCF BlueGene/P, 40,960 quad-core 850 MHz PPC450 nodes,
    /// 556 Tflop/s peak. Runs the improved point-to-point Gen_VF/Gen_dens.
    pub fn intrepid() -> Self {
        MachineSpec {
            name: "Intrepid (BlueGene/P)",
            total_cores: 163_840,
            peak_per_core: 556.0e12 / 163_840.0,
            // 40 Ry cutoff / 32³ grid per cell → fewer flops per atom:
            // 107.5 Tflop/s × ~60 s/iter on 16,384 atoms → 3.94e11.
            flops_per_atom_iter: 3.94e11,
            group_eff_base: 0.350,
            np_rolloff: 250.0,
            np_rolloff_exp: 2.0,
            // BG/P's dedicated networks + p2p comm: smaller serial share.
            serial_fraction: 1.0 / 800_000.0,
            // Effective p2p comm ≈ 5e-4 s/atom (×1/6 multiplier below);
            // cf. §IV Intrepid breakdown: 0.37 + 0.56 + 1.23 s at 16,384
            // atoms.
            comm_seconds_per_atom: 3.0e-3,
            comm: CommAlgo::PointToPoint,
        }
    }

    /// Per-group kernel efficiency at group size `np`.
    pub fn group_efficiency(&self, np: usize) -> f64 {
        let x = np as f64 / self.np_rolloff;
        self.group_eff_base / (1.0 + x.powf(self.np_rolloff_exp))
    }

    /// Communication-time multiplier of the configured algorithm relative
    /// to the collective baseline (paper §IV: file I/O was ~9× slower;
    /// point-to-point is ~6× faster — 22 s → 2.5 s → sub-second).
    pub fn comm_multiplier(&self) -> f64 {
        match self.comm {
            CommAlgo::FileIo => 9.0,
            CommAlgo::Collective => 1.0,
            CommAlgo::PointToPoint => 1.0 / 6.0,
        }
    }

    /// Clone with a different communication algorithm (for the ablation).
    pub fn with_comm(&self, comm: CommAlgo) -> Self {
        let mut m = self.clone();
        m.comm = comm;
        m
    }

    /// Theoretical peak of `cores` cores (flop/s).
    pub fn peak(&self, cores: usize) -> f64 {
        cores as f64 * self.peak_per_core
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rates_match_paper() {
        // §VI: Franklin 101.5 Tf, Jaguar ≈263 Tf, Intrepid 556 Tf.
        let f = MachineSpec::franklin();
        assert!((f.peak(f.total_cores) / 1e12 - 101.5).abs() < 0.1);
        let j = MachineSpec::jaguar();
        assert!((j.peak(j.total_cores) / 1e12 - 263.0).abs() < 0.5);
        let i = MachineSpec::intrepid();
        assert!((i.peak(i.total_cores) / 1e12 - 556.0).abs() < 0.5);
        // Paper: "Jaguar has the faster per processor speed".
        assert!(j.peak_per_core > f.peak_per_core);
        assert!(f.peak_per_core > i.peak_per_core);
    }

    #[test]
    fn group_efficiency_decays_with_np() {
        let j = MachineSpec::jaguar();
        let e20 = j.group_efficiency(20);
        let e40 = j.group_efficiency(40);
        let e80 = j.group_efficiency(80);
        assert!(e20 > e40 && e40 > e80);
        // The Np = 80 penalty is substantial (paper: 25.6% → 20.9%,
        // i.e. a ≥10% relative kernel-efficiency drop).
        assert!(e80 / e40 < 0.92);
    }

    #[test]
    fn comm_algorithm_ordering() {
        let f = MachineSpec::franklin();
        let io = f.with_comm(CommAlgo::FileIo).comm_multiplier();
        let col = f.with_comm(CommAlgo::Collective).comm_multiplier();
        let p2p = f.with_comm(CommAlgo::PointToPoint).comm_multiplier();
        assert!(io > col && col > p2p);
    }
}
