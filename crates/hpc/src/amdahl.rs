//! Amdahl's-law analysis of strong-scaling data (paper Eq. 1 / Fig. 3).
//!
//! The paper fits `P_p = P_s·n/(1 + (n−1)·α)` to the measured performance
//! by least squares, extracting the effective single-core rate `P_s` and
//! the serial fraction `α` (they find `α = 1/362,000` for PEtot_F and
//! `1/101,000` for LS3DF overall). We fit the same model by linearizing:
//! `1/P_p = (1/P_s)·(1/n) + (α/P_s)·((n−1)/n)` is linear in the two
//! unknowns `1/P_s` and `α/P_s`.

use ls3df_math::{lstsq, Matrix};

/// Result of an Amdahl fit.
#[derive(Clone, Copy, Debug)]
pub struct AmdahlFit {
    /// Effective single-core performance (same units as the input `p`).
    pub p_serial: f64,
    /// Serial work fraction α.
    pub alpha: f64,
    /// Mean absolute relative deviation of the fit (the paper reports
    /// 0.26%).
    pub mean_abs_rel_dev: f64,
    /// Maximum absolute relative deviation (paper: 0.48%).
    pub max_abs_rel_dev: f64,
}

impl AmdahlFit {
    /// Predicted performance at `n` cores.
    pub fn predict(&self, n: f64) -> f64 {
        self.p_serial * n / (1.0 + (n - 1.0) * self.alpha)
    }

    /// Predicted speedup relative to `n0` cores.
    pub fn speedup(&self, n: f64, n0: f64) -> f64 {
        self.predict(n) / self.predict(n0)
    }
}

/// Fits Amdahl's law to `(cores, performance)` samples. Panics on fewer
/// than two samples; returns `None` when the least-squares system is
/// degenerate (e.g. all samples at the same core count).
pub fn fit_amdahl(cores: &[f64], perf: &[f64]) -> Option<AmdahlFit> {
    assert_eq!(cores.len(), perf.len(), "fit_amdahl: length mismatch");
    assert!(cores.len() >= 2, "fit_amdahl: need at least two samples");
    let a = Matrix::from_fn(cores.len(), 2, |i, j| {
        let n = cores[i];
        if j == 0 {
            1.0 / n
        } else {
            (n - 1.0) / n
        }
    });
    let b: Vec<f64> = perf.iter().map(|&p| 1.0 / p).collect();
    let c = lstsq(&a, &b).ok()?;
    let p_serial = 1.0 / c[0];
    let alpha = c[1] * p_serial;
    let mut fit = AmdahlFit {
        p_serial,
        alpha,
        mean_abs_rel_dev: 0.0,
        max_abs_rel_dev: 0.0,
    };
    let mut sum = 0.0;
    let mut max: f64 = 0.0;
    for (&n, &p) in cores.iter().zip(perf) {
        let rel = (fit.predict(n) / p - 1.0).abs();
        sum += rel;
        max = max.max(rel);
    }
    fit.mean_abs_rel_dev = sum / cores.len() as f64;
    fit.max_abs_rel_dev = max;
    Some(fit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_synthetic_parameters() {
        let ps = 2.39e9; // the paper's fitted 2.39 Gflop/s
        let alpha = 1.0 / 101_000.0;
        let cores = [1080.0, 2160.0, 4320.0, 8640.0, 17280.0];
        let perf: Vec<f64> = cores
            .iter()
            .map(|&n| ps * n / (1.0 + (n - 1.0) * alpha))
            .collect();
        let fit = fit_amdahl(&cores, &perf).unwrap();
        assert!((fit.p_serial / ps - 1.0).abs() < 1e-9);
        assert!((fit.alpha / alpha - 1.0).abs() < 1e-6);
        assert!(fit.max_abs_rel_dev < 1e-10);
    }

    #[test]
    fn fit_tolerates_noise() {
        let ps = 1.0e9;
        let alpha = 5e-6;
        let cores: Vec<f64> = (0..8).map(|i| 500.0 * 2.0_f64.powi(i)).collect();
        let perf: Vec<f64> = cores
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let noise = 1.0 + 0.004 * if i % 2 == 0 { 1.0 } else { -1.0 };
                ps * n / (1.0 + (n - 1.0) * alpha) * noise
            })
            .collect();
        let fit = fit_amdahl(&cores, &perf).unwrap();
        assert!(
            (fit.alpha / alpha - 1.0).abs() < 0.5,
            "alpha = {}",
            fit.alpha
        );
        assert!(fit.mean_abs_rel_dev < 0.02);
    }

    #[test]
    fn speedup_saturates_at_inverse_alpha() {
        let fit = AmdahlFit {
            p_serial: 1.0,
            alpha: 1e-4,
            mean_abs_rel_dev: 0.0,
            max_abs_rel_dev: 0.0,
        };
        // As n → ∞, speedup vs 1 core → 1/α.
        let s = fit.predict(1e9) / fit.predict(1.0);
        assert!((s - 1e4).abs() / 1e4 < 0.01);
    }

    #[test]
    fn perfect_scaling_gives_zero_alpha() {
        let cores = [100.0, 200.0, 400.0, 800.0];
        let perf: Vec<f64> = cores.iter().map(|&n| 3.0 * n).collect();
        let fit = fit_amdahl(&cores, &perf).unwrap();
        assert!(fit.alpha.abs() < 1e-12);
        assert!((fit.p_serial - 3.0).abs() < 1e-9);
    }
}
