//! # ls3df-hpc
//!
//! Machine/performance model substrate: regenerates the paper's Table I
//! and Figures 3–5 (and the §VI crossover analysis) from an analytic cost
//! model of the LS3DF pipeline on the three machines the paper used
//! (Franklin, Jaguar, Intrepid). See DESIGN.md for the substitution
//! rationale — the petascale hardware is simulated, the model constants
//! are taken from the paper's own §IV/§VI measurements plus timings of
//! our real Rust implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amdahl;
pub mod comm;
pub mod cost;
pub mod crossover;
pub mod machine;
pub mod scaling;
pub mod scheduler;
pub mod simulate;
pub mod table1;

pub use amdahl::{fit_amdahl, AmdahlFit};
pub use comm::{CommProblem, Network};
pub use cost::{
    iteration_time, pct_peak, sustained_flops, DirectCodeModel, IterationTime, Problem,
};
pub use crossover::{crossover_atoms, crossover_sweep, speed_ratio, CrossoverPoint};
pub use machine::{CommAlgo, MachineSpec};
pub use scaling::{
    efficiency_scatter, fig3_core_counts, strong_scaling, weak_scaling, EfficiencyPoint,
    StrongScalingPoint, WeakScalingPoint,
};
pub use scheduler::{jobs_for, lpt_imbalance, schedule, FragmentJob, Policy, Schedule};
pub use simulate::{simulate_iteration, IterationTimeline};
pub use table1::{model_row, paper_table1, Machine, ModelRow, Table1Row};
