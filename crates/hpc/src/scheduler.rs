//! Fragment-to-group scheduling.
//!
//! The paper distributes fragments over `Ng = P/Np` processor groups
//! ("The fragments of the LS3DF algorithm can be calculated separately
//! with different groups of processors"). Fragments are heterogeneous —
//! per corner there is one 2×2×2 (8 pieces of work), three 2×2×1 (4),
//! three 2×1×1 (2) and one 1×1×1 (1) — so the assignment policy sets the
//! PEtot_F load balance. This module provides the standard policies and
//! the makespan analysis behind the cost model's imbalance factor.

/// One schedulable fragment job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FragmentJob {
    /// Work units (≈ pieces of volume; the per-corner mix is 8,4,4,4,2,2,2,1).
    pub cost: f64,
}

/// The canonical per-corner cost mix (volume in pieces of the 8 fragment
/// types).
pub const CORNER_COSTS: [f64; 8] = [8.0, 4.0, 4.0, 4.0, 2.0, 2.0, 2.0, 1.0];

/// Builds the full job list for an `m1 × m2 × m3` decomposition.
pub fn jobs_for(m: [usize; 3]) -> Vec<FragmentJob> {
    let corners = m[0] * m[1] * m[2];
    let mut jobs = Vec::with_capacity(8 * corners);
    for _ in 0..corners {
        for &c in &CORNER_COSTS {
            jobs.push(FragmentJob { cost: c });
        }
    }
    jobs
}

/// Assignment policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Jobs dealt round-robin in input order (the naive baseline).
    RoundRobin,
    /// Longest-processing-time-first greedy (sort descending, place each
    /// job on the least-loaded group) — the classic 4/3-approximation.
    LongestFirst,
}

/// Result of scheduling jobs onto groups.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Total work per group.
    pub group_loads: Vec<f64>,
    /// Makespan (the slowest group's load).
    pub makespan: f64,
    /// Perfectly balanced load (total / groups).
    pub ideal: f64,
}

impl Schedule {
    /// Load-imbalance factor `makespan / ideal ≥ 1`.
    pub fn imbalance(&self) -> f64 {
        self.makespan / self.ideal
    }

    /// Parallel efficiency of the fragment phase `ideal / makespan`.
    pub fn efficiency(&self) -> f64 {
        self.ideal / self.makespan
    }
}

/// Schedules `jobs` onto `n_groups` groups under `policy`.
pub fn schedule(jobs: &[FragmentJob], n_groups: usize, policy: Policy) -> Schedule {
    assert!(n_groups >= 1, "schedule: need at least one group");
    let mut loads = vec![0.0_f64; n_groups];
    match policy {
        Policy::RoundRobin => {
            for (i, j) in jobs.iter().enumerate() {
                loads[i % n_groups] += j.cost;
            }
        }
        Policy::LongestFirst => {
            let mut sorted: Vec<f64> = jobs.iter().map(|j| j.cost).collect();
            sorted.sort_by(|a, b| b.total_cmp(a));
            for c in sorted {
                // Place on the least-loaded group (`loads` is non-empty:
                // n_groups >= 1 is asserted above).
                let idx = loads
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map_or(0, |(i, _)| i);
                loads[idx] += c;
            }
        }
    }
    let makespan = loads.iter().cloned().fold(0.0, f64::max);
    let total: f64 = loads.iter().sum();
    Schedule {
        group_loads: loads,
        makespan,
        ideal: total / n_groups as f64,
    }
}

/// Imbalance factor of the LPT schedule for an LS3DF problem — the
/// quantity the analytic cost model approximates with
/// `ceil(n_frag/Ng)/(n_frag/Ng)`.
pub fn lpt_imbalance(m: [usize; 3], n_groups: usize) -> f64 {
    schedule(&jobs_for(m), n_groups, Policy::LongestFirst).imbalance()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_mix_sums_to_27_pieces() {
        // Each corner's 8 fragments cover 27 pieces of volume — the famous
        // LS3DF ~27× volume prefactor.
        let total: f64 = CORNER_COSTS.iter().sum();
        assert_eq!(total, 27.0);
    }

    #[test]
    fn job_census() {
        let jobs = jobs_for([3, 3, 3]);
        assert_eq!(jobs.len(), 8 * 27);
        let total: f64 = jobs.iter().map(|j| j.cost).sum();
        assert_eq!(total, 27.0 * 27.0);
    }

    #[test]
    fn lpt_beats_round_robin() {
        let jobs = jobs_for([4, 4, 4]);
        for n_groups in [7usize, 13, 40, 100] {
            let rr = schedule(&jobs, n_groups, Policy::RoundRobin);
            let lpt = schedule(&jobs, n_groups, Policy::LongestFirst);
            assert!(
                lpt.makespan <= rr.makespan + 1e-12,
                "LPT {} vs RR {} at {n_groups} groups",
                lpt.makespan,
                rr.makespan
            );
        }
    }

    #[test]
    fn lpt_is_near_ideal_with_many_fragments_per_group() {
        // The paper's regime: Ng ≪ n_fragments → near-perfect balance.
        let imb = lpt_imbalance([8, 6, 9], 432); // the Fig. 3 run: Ng = 432
        assert!(imb < 1.05, "imbalance {imb}");
    }

    #[test]
    fn imbalance_grows_when_groups_exceed_large_jobs() {
        // With one group per fragment the 2×2×2 fragments dominate the
        // makespan: efficiency = mean/size-8 = (27/8)/8.
        let jobs = jobs_for([2, 2, 2]);
        let s = schedule(&jobs, jobs.len(), Policy::LongestFirst);
        assert!((s.imbalance() - 8.0 / (27.0 / 8.0)).abs() < 1e-12);
    }

    #[test]
    fn conservation_of_work() {
        let jobs = jobs_for([3, 2, 2]);
        for policy in [Policy::RoundRobin, Policy::LongestFirst] {
            let s = schedule(&jobs, 11, policy);
            let total: f64 = s.group_loads.iter().sum();
            assert!((total - 27.0 * 12.0).abs() < 1e-9);
            assert!(s.makespan >= s.ideal - 1e-12);
        }
    }

    #[test]
    fn single_group_is_trivially_balanced() {
        let s = schedule(&jobs_for([2, 2, 2]), 1, Policy::LongestFirst);
        assert_eq!(s.imbalance(), 1.0);
    }
}
