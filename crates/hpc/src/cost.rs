//! The LS3DF wall-clock / throughput model.
//!
//! One outer SCF iteration costs
//!
//! ```text
//! t_iter = t_PEtot_F + t_comm
//! t_PEtot_F = F(A)/(P·peak·eff(Np)) · imbalance(Ng)  +  F(A)·σ/(peak·eff(Np))
//! t_comm    = χ·A·mult(algo)
//! ```
//!
//! where `F(A) = flops_per_atom_iter · A` (linear scaling), `P` cores,
//! `Np` cores per group, `Ng = P/Np` groups, `σ` the Amdahl serial
//! fraction, and `χ` the per-atom Gen_VF/Gen_dens/GENPOT constant (the
//! global-grid data volume is set by the system, not the core count —
//! which is why the paper's Fig. 4 efficiency depends on concurrency but
//! hardly on system size).

use crate::machine::MachineSpec;

/// An LS3DF problem instance, in the paper's units.
#[derive(Clone, Copy, Debug)]
pub struct Problem {
    /// Supercell in eight-atom cells.
    pub m: [usize; 3],
}

impl Problem {
    /// Creates a problem from the `m1 × m2 × m3` cell counts.
    pub fn new(m1: usize, m2: usize, m3: usize) -> Self {
        Problem { m: [m1, m2, m3] }
    }

    /// Atom count `8·m1·m2·m3`.
    pub fn atoms(&self) -> usize {
        8 * self.m[0] * self.m[1] * self.m[2]
    }

    /// Number of fragments (8 per piece corner).
    pub fn fragments(&self) -> usize {
        8 * self.m[0] * self.m[1] * self.m[2]
    }

    /// Label like `8x6x9`.
    pub fn label(&self) -> String {
        format!("{}x{}x{}", self.m[0], self.m[1], self.m[2])
    }
}

/// Timing breakdown of one modeled SCF iteration (seconds).
#[derive(Clone, Copy, Debug)]
pub struct IterationTime {
    /// Fragment eigensolves.
    pub petot_f: f64,
    /// Gen_VF + Gen_dens + GENPOT combined.
    pub comm: f64,
    /// Load-imbalance overhead included in `petot_f` (seconds of it).
    pub imbalance: f64,
}

impl IterationTime {
    /// Total iteration time.
    pub fn total(&self) -> f64 {
        self.petot_f + self.comm
    }
}

/// The model: wall time of one SCF iteration of `problem` on `cores`
/// cores with `np` cores per group.
pub fn iteration_time(
    machine: &MachineSpec,
    problem: &Problem,
    cores: usize,
    np: usize,
) -> IterationTime {
    assert!(cores >= np && np >= 1, "need at least one full group");
    let atoms = problem.atoms() as f64;
    let flops = machine.flops_per_atom_iter * atoms;
    let eff = machine.group_efficiency(np);
    let effective_rate = machine.peak_per_core * eff;

    // Perfectly parallel part.
    let t_par = flops / (cores as f64 * effective_rate);
    // Amdahl serial part (fraction of the one-core time).
    let t_serial = machine.serial_fraction * flops / effective_rate;
    // Group-level load imbalance: Ng groups share `fragments` fragments;
    // the slowest group does ceil(n_frag/Ng) of the average work.
    let n_groups = (cores / np).max(1) as f64;
    let n_frag = problem.fragments() as f64;
    let imbalance_factor = if n_groups <= n_frag {
        (n_frag / n_groups).ceil() / (n_frag / n_groups)
    } else {
        // More groups than fragments: extra groups idle.
        n_groups / n_frag
    };
    let t_petot = t_par * imbalance_factor + t_serial;

    // Gen_VF/Gen_dens/GENPOT: per-atom constant × algorithm multiplier.
    let comm = machine.comm_seconds_per_atom * atoms * machine.comm_multiplier();

    IterationTime {
        petot_f: t_petot,
        comm,
        imbalance: t_par * (imbalance_factor - 1.0),
    }
}

/// Sustained flop rate (flop/s) of the modeled run.
pub fn sustained_flops(machine: &MachineSpec, problem: &Problem, cores: usize, np: usize) -> f64 {
    let t = iteration_time(machine, problem, cores, np).total();
    machine.flops_per_atom_iter * problem.atoms() as f64 / t
}

/// Fraction of theoretical peak achieved.
pub fn pct_peak(machine: &MachineSpec, problem: &Problem, cores: usize, np: usize) -> f64 {
    sustained_flops(machine, problem, cores, np) / machine.peak(cores)
}

/// The direct planewave-code model (PARATEC/VASP/stand-alone PEtot
/// stand-in) for the §VI comparison. Time per SCF iteration:
///
/// ```text
/// t = (κ₂·A² + κ₃·A³)/(P·peak·eff)
/// ```
///
/// (the A² term is the FFT `H·ψ` work, the A³ term the orthogonalization/
/// subspace work that dominates asymptotically).
///
/// **Calibration note:** the paper's three quantitative claims —
/// PARATEC = 340 s/iteration at 216 atoms on 320 cores, a 600-atom
/// crossover, and "400 times faster" at 13,824 atoms — are mutually
/// inconsistent by roughly an order of magnitude when combined with its
/// own Table I rates (the Table I data imply LS3DF is already ~2× faster
/// at 216 atoms). We anchor on the *measured* PARATEC point and the
/// abstract's 400× headline; the resulting crossover lands near ~150
/// atoms, earlier than the stated 600 (EXPERIMENTS.md discusses this).
#[derive(Clone, Copy, Debug)]
pub struct DirectCodeModel {
    /// Quadratic-cost coefficient (flops per atom² per iteration).
    pub kappa2: f64,
    /// Cubic-cost coefficient (flops per atom³ per iteration).
    pub kappa3: f64,
    /// Sustained fraction of peak (the paper grants these codes high
    /// efficiency: "close to that of the best planewave codes").
    pub efficiency: f64,
}

impl DirectCodeModel {
    /// Calibrated PARATEC-like model (see struct docs).
    pub fn paratec() -> Self {
        DirectCodeModel {
            kappa2: 5.877e9,
            kappa3: 1.127e6,
            efficiency: 0.5,
        }
    }

    /// Time per SCF iteration on `cores` cores (perfect scaling granted,
    /// as the paper generously presumes).
    pub fn iteration_time(&self, machine: &MachineSpec, atoms: usize, cores: usize) -> f64 {
        let a = atoms as f64;
        (self.kappa2 * a * a + self.kappa3 * a * a * a)
            / (cores as f64 * machine.peak_per_core * self.efficiency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_scaling_in_atoms() {
        let m = MachineSpec::franklin();
        let small = iteration_time(&m, &Problem::new(4, 4, 4), 1280, 20).total();
        let large = iteration_time(&m, &Problem::new(8, 8, 8), 10240, 20).total();
        // 8× atoms on 8× cores → same time within imbalance noise.
        assert!(
            (large / small - 1.0).abs() < 0.15,
            "ratio = {}",
            large / small
        );
    }

    #[test]
    fn sustained_rate_close_to_paper_anchor() {
        // The 3,456-atom 8×6×9 run on 17,280 Franklin cores sustained
        // 31.35 Tflop/s (~1 min/iteration).
        let m = MachineSpec::franklin();
        let p = Problem::new(8, 6, 9);
        let t = iteration_time(&m, &p, 17_280, 40);
        assert!((t.total() - 60.0).abs() < 12.0, "t_iter = {}", t.total());
        let tf = sustained_flops(&m, &p, 17_280, 40) / 1e12;
        assert!((tf - 31.35).abs() < 3.0, "Tflop/s = {tf}");
    }

    #[test]
    fn efficiency_mostly_independent_of_system_size() {
        // Fig. 4: at fixed concurrency the efficiency hardly depends on
        // the number of atoms.
        let m = MachineSpec::franklin();
        let e1 = pct_peak(&m, &Problem::new(8, 6, 9), 4320, 40);
        let e2 = pct_peak(&m, &Problem::new(12, 12, 12), 4320, 40);
        assert!((e1 - e2).abs() < 0.04, "{e1} vs {e2}");
    }

    #[test]
    fn efficiency_decays_with_concurrency() {
        let m = MachineSpec::franklin();
        let p = Problem::new(8, 6, 9);
        let lo = pct_peak(&m, &p, 1080, 40);
        let hi = pct_peak(&m, &p, 17_280, 40);
        assert!(lo > hi, "{lo} vs {hi}");
        assert!(lo > 0.37 && lo < 0.44, "low-P efficiency {lo}");
        assert!(hi > 0.30 && hi < 0.38, "high-P efficiency {hi}");
    }

    #[test]
    fn paratec_calibration_point() {
        // Paper §VI: PARATEC needs 340 s per SCF iteration for the
        // 216-atom 3×3×3 system on 320 Franklin cores.
        let model = DirectCodeModel::paratec();
        let f = MachineSpec::franklin();
        let t = model.iteration_time(&f, 216, 320);
        assert!((t - 340.0).abs() < 10.0, "t = {t}");
    }

    #[test]
    fn direct_code_asymptotically_cubic() {
        let model = DirectCodeModel::paratec();
        let f = MachineSpec::franklin();
        let t1 = model.iteration_time(&f, 50_000, 1000);
        let t2 = model.iteration_time(&f, 100_000, 1000);
        let growth = t2 / t1;
        assert!((7.0..8.1).contains(&growth), "growth = {growth}");
    }
}
