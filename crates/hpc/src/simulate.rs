//! Discrete-event simulation of one LS3DF SCF iteration.
//!
//! Where [`crate::cost`] is a closed-form model, this walks the actual
//! schedule: `Ng` groups drain their (LPT-assigned) fragment queues at the
//! group's effective rate, synchronize, exchange Gen_VF/Gen_dens data,
//! and one group runs GENPOT — producing per-phase timings, the makespan
//! and the core-utilization number behind the paper's "% of peak".

use crate::cost::Problem;
use crate::machine::MachineSpec;
use crate::scheduler::{jobs_for, schedule, Policy};

/// Timeline of one simulated SCF iteration.
#[derive(Clone, Debug)]
pub struct IterationTimeline {
    /// Per-group busy time in the PEtot_F phase (seconds).
    pub group_busy: Vec<f64>,
    /// PEtot_F phase wall time (slowest group).
    pub petot_wall: f64,
    /// Gen_VF + Gen_dens communication wall time.
    pub comm_wall: f64,
    /// GENPOT wall time (runs at one group's width).
    pub genpot_wall: f64,
    /// Total iteration wall time.
    pub total_wall: f64,
    /// Fraction of core-seconds doing fragment work (the utilization that
    /// bounds "% of peak").
    pub utilization: f64,
}

/// Simulates one SCF iteration of `problem` on `cores` cores in groups of
/// `np` using LPT fragment assignment.
pub fn simulate_iteration(
    machine: &MachineSpec,
    problem: &Problem,
    cores: usize,
    np: usize,
) -> IterationTimeline {
    assert!(cores >= np && np >= 1);
    let n_groups = (cores / np).max(1);
    let jobs = jobs_for(problem.m);
    let sched = schedule(&jobs, n_groups, Policy::LongestFirst);

    // Work per piece-of-volume unit: total flops spread over the 27×
    // replicated volume.
    let total_flops = machine.flops_per_atom_iter * problem.atoms() as f64;
    let total_units: f64 = jobs.iter().map(|j| j.cost).sum();
    let flops_per_unit = total_flops / total_units;
    let group_rate = np as f64 * machine.peak_per_core * machine.group_efficiency(np);

    let group_busy: Vec<f64> = sched
        .group_loads
        .iter()
        .map(|&units| units * flops_per_unit / group_rate)
        .collect();
    let petot_wall = group_busy.iter().cloned().fold(0.0, f64::max)
        + machine.serial_fraction * total_flops
            / (machine.peak_per_core * machine.group_efficiency(np));

    // Communication: the calibrated per-atom constant split 80/20 between
    // the two patching steps and GENPOT (paper §IV: GENPOT is the smaller
    // piece after optimization).
    let comm_total =
        machine.comm_seconds_per_atom * problem.atoms() as f64 * machine.comm_multiplier();
    let comm_wall = 0.8 * comm_total;
    let genpot_wall = 0.2 * comm_total;

    let total_wall = petot_wall + comm_wall + genpot_wall;
    let busy_core_seconds: f64 = group_busy.iter().map(|b| b * np as f64).sum();
    let utilization = busy_core_seconds / (cores as f64 * total_wall);

    IterationTimeline {
        group_busy,
        petot_wall,
        comm_wall,
        genpot_wall,
        total_wall,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::iteration_time;

    #[test]
    fn simulation_agrees_with_closed_form_in_balanced_regime() {
        let m = MachineSpec::franklin();
        let p = Problem::new(8, 6, 9);
        for &(cores, np) in &[(1080usize, 40usize), (4320, 40), (17280, 40)] {
            let sim = simulate_iteration(&m, &p, cores, np);
            let closed = iteration_time(&m, &p, cores, np);
            let rel = (sim.total_wall - closed.total()).abs() / closed.total();
            assert!(
                rel < 0.10,
                "cores={cores}: simulated {} vs closed-form {}",
                sim.total_wall,
                closed.total()
            );
        }
    }

    #[test]
    fn all_groups_busy_when_fragments_abound() {
        let m = MachineSpec::franklin();
        let p = Problem::new(8, 6, 9); // 3,456 fragments
        let sim = simulate_iteration(&m, &p, 17280, 40); // 432 groups
        let max = sim.group_busy.iter().cloned().fold(0.0, f64::max);
        let min = sim.group_busy.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min > 0.0);
        assert!((max - min) / max < 0.05, "LPT imbalance {max} vs {min}");
        assert!(sim.utilization > 0.85, "utilization {}", sim.utilization);
    }

    #[test]
    fn utilization_collapses_when_groups_outnumber_fragments() {
        let m = MachineSpec::franklin();
        let p = Problem::new(2, 2, 2); // 64 fragments only
        let sim = simulate_iteration(&m, &p, 17280, 40); // 432 groups
                                                         // Most groups idle → utilization far below 1.
        assert!(sim.utilization < 0.30, "utilization {}", sim.utilization);
        let idle = sim.group_busy.iter().filter(|&&b| b == 0.0).count();
        assert!(idle >= 432 - 64, "idle groups {idle}");
    }

    #[test]
    fn phases_ordered_like_the_paper() {
        // §IV Intrepid breakdown: PEtot_F ≫ GENPOT > Gen_VF+Gen_dens is not
        // universal, but PEtot_F must dominate everywhere in the calibrated
        // regime.
        let m = MachineSpec::intrepid();
        let p = Problem::new(16, 16, 8);
        let sim = simulate_iteration(&m, &p, 131_072, 64);
        assert!(sim.petot_wall > 5.0 * (sim.comm_wall + sim.genpot_wall));
        // And the total is around the paper's ~57 s/iteration.
        assert!(
            (20.0..120.0).contains(&sim.total_wall),
            "t = {}",
            sim.total_wall
        );
    }
}
