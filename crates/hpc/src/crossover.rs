//! The §VI comparison: LS3DF O(N) vs conventional O(N³) planewave codes.
//!
//! Paper: "From the O(N³) scaling of PARATEC, we deduce that its
//! computation time will cross with the LS3DF time at about 600 atoms.
//! For the 13,824-atom problem … we estimate PARATEC will be 400 times
//! slower, even under the generous presumption that its performance
//! scales perfectly to 17,280 cores."

use crate::cost::{iteration_time, DirectCodeModel, Problem};
use crate::machine::MachineSpec;

/// One point of the crossover sweep.
#[derive(Clone, Copy, Debug)]
pub struct CrossoverPoint {
    /// Atom count.
    pub atoms: usize,
    /// LS3DF time per SCF iteration (s).
    pub t_ls3df: f64,
    /// Direct-code time per SCF iteration (s).
    pub t_direct: f64,
}

/// Sweeps cubic supercells `m×m×m` and reports both times per iteration
/// at fixed core count (the paper's comparison grants both codes the same
/// cores and perfect direct-code scaling).
pub fn crossover_sweep(
    machine: &MachineSpec,
    direct: &DirectCodeModel,
    cores: usize,
    np: usize,
    m_values: &[usize],
) -> Vec<CrossoverPoint> {
    m_values
        .iter()
        .map(|&m| {
            let p = Problem::new(m, m, m);
            CrossoverPoint {
                atoms: p.atoms(),
                t_ls3df: iteration_time(machine, &p, cores, np).total(),
                t_direct: direct.iteration_time(machine, p.atoms(), cores),
            }
        })
        .collect()
}

/// Interpolated crossover atom count (where the two curves intersect).
pub fn crossover_atoms(points: &[CrossoverPoint]) -> Option<f64> {
    for w in points.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        let fa = a.t_direct - a.t_ls3df;
        let fb = b.t_direct - b.t_ls3df;
        if fa <= 0.0 && fb > 0.0 {
            // Linear interpolation in log(atoms) of the sign change.
            let t = fa / (fa - fb);
            let la = (a.atoms as f64).ln();
            let lb = (b.atoms as f64).ln();
            return Some((la + t * (lb - la)).exp());
        }
    }
    None
}

/// Speed ratio `t_direct / t_ls3df` for a specific system.
pub fn speed_ratio(
    machine: &MachineSpec,
    direct: &DirectCodeModel,
    problem: &Problem,
    cores: usize,
    np: usize,
) -> f64 {
    let t_ls = iteration_time(machine, problem, cores, np).total();
    let t_d = direct.iteration_time(machine, problem.atoms(), cores);
    t_d / t_ls
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_near_600_atoms() {
        let m = MachineSpec::franklin();
        let d = DirectCodeModel::paratec();
        let points = crossover_sweep(&m, &d, 17280, 40, &[2, 3, 4, 5, 6, 7, 8, 10, 12]);
        let x = crossover_atoms(&points).expect("curves must cross");
        // Paper: "at about 600 atoms". The paper's own PARATEC measurement
        // combined with its Table I rates implies an earlier crossover
        // (~150 atoms); we accept anything clearly in the hundreds-of-atoms
        // regime and document the tension in EXPERIMENTS.md.
        assert!((80.0..1100.0).contains(&x), "crossover at {x} atoms");
    }

    #[test]
    fn ratio_at_13824_atoms_near_400() {
        let m = MachineSpec::franklin();
        let d = DirectCodeModel::paratec();
        let r = speed_ratio(&m, &d, &Problem::new(12, 12, 12), 17280, 10);
        assert!((300.0..550.0).contains(&r), "ratio = {r} (paper: ~400)");
    }

    #[test]
    fn small_systems_favor_direct_code() {
        // Below the crossover the conventional code wins.
        let m = MachineSpec::franklin();
        let d = DirectCodeModel::paratec();
        let r = speed_ratio(&m, &d, &Problem::new(2, 2, 2), 320, 10);
        assert!(r < 1.0, "direct code must win at 64 atoms (ratio {r})");
    }

    #[test]
    fn ratio_grows_superlinearly_in_atoms() {
        // t_direct/t_ls3df grows between linearly (A² regime of the direct
        // code) and quadratically (A³ regime) in atoms.
        let m = MachineSpec::franklin();
        let d = DirectCodeModel::paratec();
        let r1 = speed_ratio(&m, &d, &Problem::new(6, 6, 6), 17280, 40);
        let r2 = speed_ratio(&m, &d, &Problem::new(12, 12, 12), 17280, 40);
        let growth = r2 / r1;
        assert!(
            (8.0..64.0).contains(&growth),
            "growth {growth} for 8× atoms"
        );
    }
}
