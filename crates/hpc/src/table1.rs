//! Paper Table I: the 28 benchmark rows across Franklin, Jaguar and
//! Intrepid, with the paper's measured values and this model's outputs
//! side by side.

use crate::cost::{pct_peak, sustained_flops, Problem};
use crate::machine::MachineSpec;

/// Which machine a row ran on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Machine {
    /// NERSC Cray XT4.
    Franklin,
    /// NCCS Cray XT4.
    Jaguar,
    /// ALCF BlueGene/P.
    Intrepid,
}

impl Machine {
    /// The corresponding model spec.
    pub fn spec(self) -> MachineSpec {
        match self {
            Machine::Franklin => MachineSpec::franklin(),
            Machine::Jaguar => MachineSpec::jaguar(),
            Machine::Intrepid => MachineSpec::intrepid(),
        }
    }
}

/// One Table I row.
#[derive(Clone, Copy, Debug)]
pub struct Table1Row {
    /// Machine.
    pub machine: Machine,
    /// Supercell (eight-atom cells).
    pub m: [usize; 3],
    /// Atom count.
    pub atoms: usize,
    /// Total cores used.
    pub cores: usize,
    /// Cores per group.
    pub np: usize,
    /// Paper's measured Tflop/s.
    pub paper_tflops: f64,
    /// Paper's measured % of peak.
    pub paper_pct_peak: f64,
}

/// The complete Table I as printed in the paper.
pub fn paper_table1() -> Vec<Table1Row> {
    use Machine::*;
    let row = |machine, m: [usize; 3], cores, np, tf, pct: f64| Table1Row {
        machine,
        m,
        atoms: 8 * m[0] * m[1] * m[2],
        cores,
        np,
        paper_tflops: tf,
        paper_pct_peak: pct / 100.0,
    };
    vec![
        row(Franklin, [3, 3, 3], 270, 10, 0.57, 40.4),
        row(Franklin, [3, 3, 3], 540, 20, 1.14, 40.8),
        row(Franklin, [3, 3, 3], 1080, 40, 2.27, 40.5),
        row(Franklin, [4, 4, 4], 1280, 20, 2.64, 39.6),
        row(Franklin, [5, 5, 5], 2500, 20, 5.15, 39.6),
        row(Franklin, [6, 6, 6], 4320, 20, 8.72, 38.8),
        row(Franklin, [8, 6, 9], 1080, 40, 2.28, 40.5),
        row(Franklin, [8, 6, 9], 2160, 40, 4.51, 40.2),
        row(Franklin, [8, 6, 9], 4320, 40, 8.88, 39.5),
        row(Franklin, [8, 6, 9], 8640, 40, 17.04, 37.9),
        row(Franklin, [8, 6, 9], 17280, 40, 31.35, 34.9),
        row(Franklin, [8, 8, 8], 2560, 20, 5.46, 41.0),
        row(Franklin, [8, 8, 8], 10240, 20, 19.72, 37.0),
        row(Franklin, [10, 10, 8], 2000, 20, 4.18, 40.2),
        row(Franklin, [10, 10, 8], 16000, 20, 29.52, 35.5),
        row(Franklin, [12, 12, 12], 17280, 10, 32.17, 35.8),
        row(Jaguar, [8, 8, 6], 7680, 20, 17.3, 26.8),
        row(Jaguar, [8, 8, 6], 15360, 40, 33.0, 25.6),
        row(Jaguar, [8, 8, 6], 30720, 80, 53.8, 20.9),
        row(Jaguar, [8, 6, 9], 17280, 40, 36.5, 25.2),
        row(Jaguar, [16, 8, 6], 15360, 20, 33.6, 26.0),
        row(Jaguar, [16, 12, 8], 30720, 20, 60.3, 23.4),
        row(Intrepid, [4, 4, 4], 4096, 64, 4.4, 31.6),
        row(Intrepid, [8, 4, 4], 8192, 64, 8.8, 31.5),
        row(Intrepid, [8, 8, 4], 16384, 64, 17.5, 31.4),
        row(Intrepid, [8, 8, 8], 32768, 64, 34.5, 31.1),
        row(Intrepid, [16, 8, 8], 65536, 64, 60.2, 27.1),
        row(Intrepid, [16, 16, 8], 131072, 64, 107.5, 24.2),
    ]
}

/// Model outputs for one row.
#[derive(Clone, Copy, Debug)]
pub struct ModelRow {
    /// Modeled Tflop/s.
    pub tflops: f64,
    /// Modeled fraction of peak.
    pub pct_peak: f64,
}

/// Evaluates the model on a Table I row.
pub fn model_row(row: &Table1Row) -> ModelRow {
    let spec = row.machine.spec();
    let problem = Problem { m: row.m };
    ModelRow {
        tflops: sustained_flops(&spec, &problem, row.cores, row.np) / 1e12,
        pct_peak: pct_peak(&spec, &problem, row.cores, row.np),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_28_rows_with_paper_atom_counts() {
        let t = paper_table1();
        assert_eq!(t.len(), 28);
        for r in &t {
            assert_eq!(r.atoms, 8 * r.m[0] * r.m[1] * r.m[2]);
        }
        // Headline rows.
        assert!(t
            .iter()
            .any(|r| r.cores == 131_072 && (r.paper_tflops - 107.5).abs() < 1e-9));
        assert!(t
            .iter()
            .any(|r| r.cores == 30_720 && (r.paper_tflops - 60.3).abs() < 1e-9));
    }

    #[test]
    fn model_matches_every_row_within_tolerance() {
        // The reproduction target: the model's % of peak within 5
        // percentage points of the paper on every row, and within 2.5 on
        // average.
        let mut sum = 0.0;
        for row in paper_table1() {
            let m = model_row(&row);
            let err = (m.pct_peak - row.paper_pct_peak).abs();
            assert!(
                err < 0.05,
                "{:?} {} cores={} np={}: model {:.1}% vs paper {:.1}%",
                row.machine,
                Problem { m: row.m }.label(),
                row.cores,
                row.np,
                m.pct_peak * 100.0,
                row.paper_pct_peak * 100.0
            );
            sum += err;
        }
        let avg = sum / 28.0;
        assert!(avg < 0.025, "average |Δ%peak| = {:.3}", avg);
    }

    #[test]
    fn model_reproduces_who_wins() {
        // Intrepid posts the largest total rate (107 Tf), Jaguar the
        // fastest per-core speed — both shape claims must survive the model.
        let rows = paper_table1();
        let best = rows
            .iter()
            .map(|r| (r, model_row(r).tflops))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(best.0.machine, Machine::Intrepid);
        assert_eq!(best.0.cores, 131_072);
    }
}
