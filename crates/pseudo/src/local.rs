//! Analytic local pseudopotentials in reciprocal space.
//!
//! **Substitution note (see DESIGN.md):** the paper uses tabulated
//! norm-conserving pseudopotentials for Zn/Te/O. Those tables are not
//! redistributable here, so we use a two-term analytic model of the same
//! norm-conserving *shape*:
//!
//! ```text
//! v(r) = −Z·erf(r/r_c)/r + A·exp(−r²/w²)
//! v(q) = −(4πZ/q²)·exp(−q²r_c²/4) + A·π^{3/2}·w³·exp(−q²w²/4)
//! ```
//!
//! i.e. a screened Coulomb tail with softened core plus a repulsive
//! Gaussian core correction — the classic "evanescent core" form. The
//! `q → 0` limit keeps only the non-divergent part (the `−4πZ/q²` piece
//! cancels against the Hartree and jellium terms in a neutral cell):
//! `v(0) = πZr_c² + A·π^{3/2}w³`.

use std::f64::consts::PI;

/// Two-parameter analytic local pseudopotential for one species.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LocalPotential {
    /// Ionic charge Z (equals the species valence for neutrality).
    pub z: f64,
    /// Core softening radius r_c (Bohr).
    pub rc: f64,
    /// Gaussian core-repulsion amplitude A (Hartree).
    pub a: f64,
    /// Gaussian core-repulsion width w (Bohr).
    pub w: f64,
}

impl LocalPotential {
    /// Form factor `v(q)` in Hartree·Bohr³ (to be divided by the cell
    /// volume when assembling the periodic potential). For `q = 0` returns
    /// the regularized non-divergent part.
    pub fn fourier(&self, q: f64) -> f64 {
        let gauss = self.a * PI.powf(1.5) * self.w.powi(3) * (-q * q * self.w * self.w / 4.0).exp();
        if q < 1e-12 {
            PI * self.z * self.rc * self.rc + gauss
        } else {
            -(4.0 * PI * self.z / (q * q)) * (-q * q * self.rc * self.rc / 4.0).exp() + gauss
        }
    }

    /// The long-range `−4πZ/q²` bare-Coulomb part alone (used by the Ewald
    /// -like ion–ion energy assembly).
    pub fn coulomb_tail(&self, q: f64) -> f64 {
        if q < 1e-12 {
            0.0
        } else {
            -4.0 * PI * self.z / (q * q)
        }
    }

    /// Real-space value `v(r)` (Hartree); used for testing the Fourier
    /// representation and for visualization.
    pub fn real_space(&self, r: f64) -> f64 {
        let gauss = self.a * (-r * r / (self.w * self.w)).exp();
        if r < 1e-9 {
            // lim_{r→0} −Z·erf(r/rc)/r = −2Z/(√π·rc)
            -2.0 * self.z / (PI.sqrt() * self.rc) + gauss
        } else {
            -self.z * erf(r / self.rc) / r + gauss
        }
    }
}

/// Error function, evaluated by composite Simpson quadrature of the
/// defining integral (n = 128 panels). Accurate to better than 1e-12 for
/// |x| ≤ 6; beyond that erf(x) = ±1 in f64. Only used off the hot path
/// (real-space checks, visualization); the solver works in q-space.
pub fn erf(x: f64) -> f64 {
    if x.abs() > 6.0 {
        return if x > 0.0 { 1.0 } else { -1.0 };
    }
    let n = 128;
    let h = x / n as f64;
    let f = |t: f64| (-t * t).exp();
    let mut s = f(0.0) + f(x);
    for i in 1..n {
        let t = h * i as f64;
        s += f(t) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    s * h / 3.0 * 2.0 / PI.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values (Abramowitz & Stegun tables).
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (-1.0, -0.8427007929),
            (4.0, 0.9999999846),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 1e-9,
                "erf({x}) = {} ≠ {want}",
                erf(x)
            );
        }
    }

    #[test]
    fn fourier_continuous_at_origin() {
        // v(q) + 4πZ/q² (screened minus bare Coulomb) must tend smoothly to
        // the regularized v(0) = πZr_c² + A·π^{3/2}w³.
        let v = LocalPotential {
            z: 4.0,
            rc: 1.0,
            a: 2.0,
            w: 0.8,
        };
        let v0 = v.fourier(0.0);
        let q = 1e-4;
        let vq_plus_coulomb = v.fourier(q) + 4.0 * PI * v.z / (q * q);
        assert!(
            (vq_plus_coulomb - v0).abs() < 1e-3,
            "regularized limit mismatch: {vq_plus_coulomb} vs {v0}"
        );
    }

    #[test]
    fn real_space_attractive_at_origin_for_bare_ion() {
        let v = LocalPotential {
            z: 6.0,
            rc: 0.8,
            a: 0.0,
            w: 1.0,
        };
        assert!(v.real_space(0.0) < 0.0);
        // Tends to −Z/r at large r.
        let r = 8.0;
        assert!((v.real_space(r) + v.z / r).abs() < 1e-8);
    }

    #[test]
    fn gaussian_core_raises_origin() {
        let bare = LocalPotential {
            z: 2.0,
            rc: 1.0,
            a: 0.0,
            w: 1.0,
        };
        let repulsive = LocalPotential {
            z: 2.0,
            rc: 1.0,
            a: 5.0,
            w: 1.0,
        };
        assert!(repulsive.real_space(0.0) > bare.real_space(0.0));
        assert!(repulsive.fourier(0.0) > bare.fourier(0.0));
    }

    #[test]
    fn fourier_decays_with_q() {
        let v = LocalPotential {
            z: 6.0,
            rc: 1.2,
            a: 4.0,
            w: 1.0,
        };
        let v1 = v.fourier(1.0).abs();
        let v4 = v.fourier(4.0).abs();
        let v8 = v.fourier(8.0).abs();
        assert!(v4 < v1);
        assert!(v8 < v4);
        assert!(v8 < 1e-3 * v1 + 1e-6);
    }
}
