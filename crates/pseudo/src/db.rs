//! Model pseudopotential database for the LS3DF test systems.
//!
//! Parameters are *model* values (see DESIGN.md substitution table) chosen
//! so that the scaled-down calculations reproduce the qualitative physics
//! the paper relies on:
//!
//! * ZnTe is a direct-gap semiconductor (filled anion-derived valence
//!   bands separated from the conduction band);
//! * the O site potential is substantially deeper/shorter-ranged than Te,
//!   so substitutional O pulls localized states below the ZnTe CBM
//!   (the mid-band-gap physics of paper §VII);
//! * passivant pseudo-hydrogens carry the fractional charges that saturate
//!   II–VI dangling bonds (1.5 on cation-side bonds, 0.5 on anion-side).

use crate::{KbProjector, LocalPotential};
use ls3df_atoms::Species;

/// Full pseudopotential parameter set for one species.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PseudoParams {
    /// Local part.
    pub local: LocalPotential,
    /// Nonlocal KB projector (may have `e_kb = 0` = inactive).
    pub kb: KbProjector,
}

/// Looks up the default model parameters for a species.
pub fn params_for(species: Species) -> PseudoParams {
    match species {
        Species::Zn => PseudoParams {
            local: LocalPotential {
                z: 2.0,
                rc: 1.20,
                a: 3.0,
                w: 0.95,
            },
            kb: KbProjector {
                rb: 1.00,
                e_kb: 1.2,
            },
        },
        Species::Te => PseudoParams {
            local: LocalPotential {
                z: 6.0,
                rc: 1.45,
                a: 5.5,
                w: 1.15,
            },
            kb: KbProjector {
                rb: 1.20,
                e_kb: 2.0,
            },
        },
        Species::O => PseudoParams {
            // Deeper, more compact than Te: this is what creates the
            // oxygen-induced states inside the ZnTe gap.
            local: LocalPotential {
                z: 6.0,
                rc: 0.90,
                a: 1.8,
                w: 0.65,
            },
            kb: KbProjector {
                rb: 0.80,
                e_kb: 1.0,
            },
        },
        Species::H => passivant_params(1.0),
    }
}

/// Parameters for a passivant pseudo-hydrogen with fractional ionic charge
/// `q` (0.5 for anion-side bonds, 1.5 for cation-side in II–VI crystals).
pub fn passivant_params(q: f64) -> PseudoParams {
    PseudoParams {
        local: LocalPotential {
            z: q,
            rc: 0.70,
            a: 0.0,
            w: 1.0,
        },
        kb: KbProjector { rb: 1.0, e_kb: 0.0 },
    }
}

/// A complete species → parameters table, overridable per calculation
/// (model studies and tests swap in custom potentials; production runs use
/// [`PseudoTable::default`], which matches [`params_for`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PseudoTable {
    /// Zn parameters.
    pub zn: PseudoParams,
    /// Te parameters.
    pub te: PseudoParams,
    /// O parameters.
    pub o: PseudoParams,
    /// H / generic-model-atom parameters.
    pub h: PseudoParams,
}

impl Default for PseudoTable {
    fn default() -> Self {
        PseudoTable {
            zn: params_for(Species::Zn),
            te: params_for(Species::Te),
            o: params_for(Species::O),
            h: params_for(Species::H),
        }
    }
}

impl PseudoTable {
    /// Looks up the parameters for a species.
    pub fn get(&self, species: Species) -> PseudoParams {
        match species {
            Species::Zn => self.zn,
            Species::Te => self.te,
            Species::O => self.o,
            Species::H => self.h,
        }
    }

    /// A "model crystal" table: every species is a bare deep Gaussian well
    /// with charge `z` and softening radius `rc` (closed-shell He-like
    /// atoms for `z = 2`). Used by validation tests where the chemistry is
    /// irrelevant but a clean band gap is essential.
    pub fn deep_well(z: f64, rc: f64) -> Self {
        let p = PseudoParams {
            local: LocalPotential {
                z,
                rc,
                a: 0.0,
                w: 1.0,
            },
            kb: KbProjector { rb: 1.0, e_kb: 0.0 },
        };
        PseudoTable {
            zn: p,
            te: p,
            o: p,
            h: p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_match_species_valence() {
        for s in [Species::Zn, Species::Te, Species::O, Species::H] {
            assert_eq!(params_for(s).local.z, s.valence(), "{s}");
        }
    }

    #[test]
    fn oxygen_deeper_than_te_at_bond_range() {
        // At typical bonding distances the O potential must lie below Te's
        // so that O sites attract states out of the conduction band.
        let o = params_for(Species::O).local;
        let te = params_for(Species::Te).local;
        for r in [1.0, 1.5, 2.0, 3.0] {
            assert!(
                o.real_space(r) < te.real_space(r),
                "O not deeper than Te at r = {r}: {} vs {}",
                o.real_space(r),
                te.real_space(r)
            );
        }
    }

    #[test]
    fn passivants_carry_fractional_charge() {
        assert_eq!(passivant_params(0.5).local.z, 0.5);
        assert_eq!(passivant_params(1.5).local.z, 1.5);
        assert!(!passivant_params(0.5).kb.is_active());
    }
}
