//! # ls3df-pseudo
//!
//! Model norm-conserving pseudopotentials for the LS3DF reproduction:
//! analytic q-space local parts, Kleinman–Bylander separable nonlocal
//! projectors (the paper's §V choice), and fractional-charge passivant
//! pseudo-hydrogens for fragment surface passivation (paper ref. [18]).
//!
//! **Substitution:** real Zn/Te/O norm-conserving pseudopotential tables
//! are replaced by two-term analytic models of the same shape; see
//! DESIGN.md for why this preserves the algorithmic behaviour under study.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod db;
mod kb;
mod local;

pub use db::{params_for, passivant_params, PseudoParams, PseudoTable};
pub use kb::KbProjector;
pub use local::{erf, LocalPotential};
