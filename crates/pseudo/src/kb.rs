//! Kleinman–Bylander separable nonlocal projectors (q-space).
//!
//! The paper (§V): "we have used a q-space nonlocal Kleinman-Bylander
//! projector for the nonlocal potential calculation" — a reciprocal-space
//! implementation was found faster than real-space for their fragment
//! sizes. We do the same with a single s-channel Gaussian projector per
//! species:
//!
//! ```text
//! V_NL = Σ_a E_a |β_a⟩⟨β_a|,   β_a(G) ∝ exp(−G²·r_b²/2)·e^{−iG·R_a}
//! ```
//!
//! The planewave engine normalizes each projector over its own basis set
//! numerically, so `fourier` here returns the unnormalized radial shape.

/// Parameters of a one-channel KB projector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KbProjector {
    /// Radial width r_b (Bohr) of the Gaussian projector.
    pub rb: f64,
    /// KB energy E (Hartree): positive = repulsive channel, negative =
    /// attractive channel.
    pub e_kb: f64,
}

impl KbProjector {
    /// Unnormalized radial form factor `β(q) = exp(−q²·r_b²/2)`.
    pub fn fourier(&self, q: f64) -> f64 {
        (-q * q * self.rb * self.rb / 2.0).exp()
    }

    /// [`KbProjector::fourier`] over a whole `|k+G|` batch, matching the
    /// scalar form bit-for-bit (same evaluation order). Projector
    /// assembly calls this once per atom over the full planewave list,
    /// so the tight loop (rather than npw closure dispatches with the
    /// width refetched each time) is worth having.
    pub fn fourier_batch(&self, qs: &[f64], out: &mut [f64]) {
        assert_eq!(qs.len(), out.len(), "fourier_batch: length mismatch");
        let rb = self.rb;
        for (o, &q) in out.iter_mut().zip(qs) {
            *o = (-q * q * rb * rb / 2.0).exp();
        }
    }

    /// True if the projector contributes (nonzero strength).
    pub fn is_active(&self) -> bool {
        self.e_kb != 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn form_factor_monotone_decay() {
        let p = KbProjector { rb: 1.0, e_kb: 2.0 };
        assert_eq!(p.fourier(0.0), 1.0);
        assert!(p.fourier(1.0) > p.fourier(2.0));
        assert!(p.fourier(5.0) < 1e-5);
    }

    #[test]
    fn wider_projector_decays_faster_in_q() {
        let narrow = KbProjector { rb: 0.5, e_kb: 1.0 };
        let wide = KbProjector { rb: 2.0, e_kb: 1.0 };
        assert!(wide.fourier(2.0) < narrow.fourier(2.0));
    }

    #[test]
    fn batch_matches_scalar_bit_for_bit() {
        let p = KbProjector { rb: 1.3, e_kb: 2.0 };
        let qs: Vec<f64> = (0..257).map(|i| i as f64 * 0.037).collect();
        let mut out = vec![0.0; qs.len()];
        p.fourier_batch(&qs, &mut out);
        for (&q, &b) in qs.iter().zip(&out) {
            assert_eq!(p.fourier(q), b, "q = {q}");
        }
    }

    #[test]
    fn inactive_when_zero_strength() {
        assert!(!KbProjector { rb: 1.0, e_kb: 0.0 }.is_active());
        assert!(KbProjector {
            rb: 1.0,
            e_kb: -0.5
        }
        .is_active());
    }
}
