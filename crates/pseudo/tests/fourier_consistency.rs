//! Integration test: the analytic `v(q)` and `v(r)` forms of the local
//! pseudopotential must be exact Fourier transforms of each other —
//! checked by numerical radial quadrature
//! `v(q) = 4π/q·∫₀^∞ [v(r) + Z·erf-tail] ... ` — concretely, we verify the
//! *screened* pair: `v(q) = 4π·∫₀^∞ v(r)·sinc(qr)·r² dr` for the
//! short-range (Gaussian) part and the known closed form for the
//! erf-screened Coulomb part.

use ls3df_pseudo::{erf, LocalPotential};
use std::f64::consts::PI;

/// Radial Fourier transform `4π·∫ f(r)·sin(qr)/(qr)·r² dr` via composite
/// Simpson on [0, r_max].
fn radial_ft(f: impl Fn(f64) -> f64, q: f64, r_max: f64, n: usize) -> f64 {
    let h = r_max / n as f64;
    let integrand = |r: f64| {
        let sinc = if q * r < 1e-8 {
            1.0
        } else {
            (q * r).sin() / (q * r)
        };
        f(r) * sinc * r * r
    };
    let mut s = integrand(0.0) + integrand(r_max);
    for i in 1..n {
        s += integrand(h * i as f64) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    4.0 * PI * s * h / 3.0
}

#[test]
fn gaussian_core_part_transforms_exactly() {
    // The repulsive core A·e^{−r²/w²} ↔ A·π^{3/2}·w³·e^{−q²w²/4}.
    let v = LocalPotential {
        z: 0.0,
        rc: 1.0,
        a: 2.7,
        w: 0.9,
    };
    for &q in &[0.0, 0.5, 1.0, 2.0, 4.0] {
        let numeric = radial_ft(|r| v.real_space(r), q, 12.0, 2000);
        let analytic = v.fourier(q);
        assert!(
            (numeric - analytic).abs() < 1e-6 * (1.0 + analytic.abs()),
            "q = {q}: numeric {numeric} vs analytic {analytic}"
        );
    }
}

#[test]
fn screened_coulomb_part_transforms_exactly() {
    // −Z·erf(r/rc)/r ↔ −4πZ·e^{−q²rc²/4}/q². The integrand decays only
    // as 1/r·…, so compare against the *difference* from the bare Coulomb:
    // numeric FT of −Z·erf(r/rc)/r + Z/r = Z·erfc(r/rc)/r, which is
    // short-ranged; its analytic transform is 4πZ·(1 − e^{−q²rc²/4})/q².
    let z = 3.0;
    let rc = 1.1;
    for &q in &[0.4, 1.0, 2.0, 3.0] {
        let short_range = |r: f64| {
            if r < 1e-12 {
                2.0 * z / (PI.sqrt() * rc) // lim Z·erfc(r/rc)/r − ... careful: erfc(0)=1 → Z/r diverges; handle below
            } else {
                z * (1.0 - erf(r / rc)) / r
            }
        };
        // r² weight kills the 1/r endpoint: integrand(0) is finite (0).
        let numeric = radial_ft(short_range, q, 14.0, 4000);
        let analytic = 4.0 * PI * z * (1.0 - (-q * q * rc * rc / 4.0).exp()) / (q * q);
        assert!(
            (numeric - analytic).abs() < 1e-5 * (1.0 + analytic.abs()),
            "q = {q}: numeric {numeric} vs analytic {analytic}"
        );
    }
}

#[test]
fn full_form_factor_consistency() {
    // Combine: v(q) (regularized) = FT[v(r) + Z/r] − 4πZ/q² + 4πZ/q²·…;
    // equivalently FT[v(r) + Z·erfc(r/rc)/r − Z·erfc(r/rc)/r + Z/r]…
    // Simplest complete check: FT[v(r) + Z/r·erf-part] vs fourier(q) +
    // coulomb_tail(q) is the same as the two pieces already verified —
    // here we check additivity of the implementation itself.
    let v = LocalPotential {
        z: 2.0,
        rc: 0.8,
        a: 1.5,
        w: 1.2,
    };
    for &q in &[0.7, 1.8, 3.1] {
        let gauss_only = LocalPotential { z: 0.0, ..v };
        let coul_only = LocalPotential { a: 0.0, ..v };
        let sum = gauss_only.fourier(q) + coul_only.fourier(q);
        assert!(
            (v.fourier(q) - sum).abs() < 1e-12,
            "form factor must be additive in its two terms"
        );
    }
}
