//! Rank-aware telemetry: ship one rank's harvested observability state
//! to rank 0 and fold N rank payloads into a single schema-v2 report.
//!
//! The distributed SCF run (paper §III) solves fragments on worker
//! ranks whose processes exit right after the run — without this module
//! their spans and counters die with them and the run report describes
//! rank 0 only. The pieces here close that gap:
//!
//! * **rank identity** — [`set_rank`] stamps the world coordinates into
//!   the sink so every later harvest knows which lane it belongs to;
//! * **payload codec** — [`encode_telemetry`] / [`decode_telemetry`]
//!   are a compact little-endian binary serialization of a
//!   [`RankTelemetry`] (spans + threads + counters + transport
//!   histograms), suitable for shipping as an `OBSTELEM` section over
//!   the existing checkpoint section wire format. Decoding is fully
//!   validated and returns typed `Err(String)`, never panics;
//! * **merge stash** — rank 0 collects worker payloads (or their
//!   degradation markers) via [`submit_remote`] during the SCF
//!   epilogue; the report assembly later drains them with
//!   [`take_stash`];
//! * **merge** — [`merge_ranks`] folds the local harvest plus the
//!   stashed remote payloads into a [`Report`](crate::report::Report):
//!   per-rank counter tables and span aggregates, a per-SCF-iteration
//!   `PEtot_F` straggler-gap series (max−min rank time), the measured
//!   imbalance ratio against the scheduler's predicted cost bins, and
//!   comm-wait vs compute attribution.
//!
//! Degradation contract: a missing, late, malformed, or CRC-corrupt
//! payload marks its rank `missing` (or `down` with the typed comm
//! error kind) and raises the report's `telemetry_incomplete` flag —
//! it is never an error and never a hang.

use crate::report::{RankSection, RankStatus, Report};
use crate::span::{FinishedSpan, NO_INDEX};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Codec magic (`"LSOT"` little-endian) guarding [`decode_telemetry`].
const MAGIC: u32 = 0x4C53_4F54;
/// Payload format version, independent of the report schema version.
const FORMAT_VERSION: u32 = 1;

/// Decode guards against corrupt counts (a payload is at most a few
/// hundred labels / a few million spans in practice).
const MAX_LABELS: u32 = 1 << 12;
const MAX_SPANS: u64 = 1 << 26;
const MAX_LIST: u32 = 1 << 20;
const MAX_STR: u32 = 1 << 12;
const MAX_BUCKETS: u32 = 64;

/// Packed world coordinates: rank in the high 32 bits, size in the low
/// 32. Default (never set) decodes as rank 0 of a size-1 world.
// ORDERING: Relaxed — a single independent word; readers only need the
// last value written before harvest, which program order guarantees.
static WORLD: AtomicU64 = AtomicU64::new(1);

/// Stamps this process's world coordinates into the sink. Called by the
/// SCF driver as soon as the communicator resolves; `size` is clamped
/// to at least 1 and `rank` to below `size`.
pub fn set_rank(rank: usize, size: usize) {
    let size = (size.max(1) as u64).min(u32::MAX as u64);
    let rank = (rank as u64).min(size - 1);
    // ORDERING: Relaxed — see WORLD.
    WORLD.store((rank << 32) | size, Ordering::Relaxed);
}

/// The rank stamped by [`set_rank`] (0 when never stamped).
pub fn rank() -> usize {
    // ORDERING: Relaxed — see WORLD.
    (WORLD.load(Ordering::Relaxed) >> 32) as usize
}

/// The world size stamped by [`set_rank`] (1 when never stamped).
pub fn world_size() -> usize {
    // ORDERING: Relaxed — see WORLD.
    (WORLD.load(Ordering::Relaxed) as u32).max(1) as usize
}

/// One direction/kind/tag-class cell of the transport's histogram set,
/// as drained from `ls3df-dist` or deserialized from a shipped payload.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommRow {
    /// Direction: `"send"` or `"recv"`.
    pub op: String,
    /// Frame kind: `"data"`, `"barrier"`, `"bcast"`, `"reduce"`,
    /// `"hello"`.
    pub kind: String,
    /// Tag class of data frames (`"user"`, `"psi"`, `"telemetry"`);
    /// collective-protocol kinds all report as `"collective"`.
    pub tag_class: String,
    /// Frames through this cell.
    pub frames: u64,
    /// Total payload bytes.
    pub bytes: u64,
    /// Total per-frame transport latency in nanoseconds.
    pub latency_ns: u64,
    /// log2 histogram of payload sizes: bucket `b` counts frames of
    /// `2^(b-1) ≤ bytes < 2^b` (bucket 0 is empty payloads).
    pub size_buckets: Vec<u64>,
    /// log2 histogram of per-frame latency in nanoseconds, same
    /// bucketing rule.
    pub latency_buckets: Vec<u64>,
}

/// Everything one rank ships to rank 0 after its final iteration.
#[derive(Clone, Debug, Default)]
pub struct RankTelemetry {
    /// Originating rank.
    pub rank: usize,
    /// World size the originating rank believed in (shape-checked by
    /// the receiver).
    pub size: usize,
    /// The rank's finished spans, as harvested.
    pub spans: Vec<FinishedSpan>,
    /// `(thread id, thread name)` for every recording thread.
    pub threads: Vec<(u32, String)>,
    /// Counter snapshot (nonzero entries).
    pub counters: Vec<(String, u64)>,
    /// Transport histogram rows drained from the communicator.
    pub comm: Vec<CommRow>,
}

/// One remote rank's contribution to the merge, after degradation
/// rules are applied at the receiving side.
#[derive(Clone, Debug)]
pub enum RankPayload {
    /// The rank shipped a well-formed, shape-valid payload.
    Telemetry(RankTelemetry),
    /// The rank is known dead; `kind` is the stable [`CommError`] kind
    /// string (`rank_down`, `timeout`, `protocol`, `io`, `bootstrap`).
    ///
    /// [`CommError`]: https://docs.rs/ls3df-dist
    Down {
        /// The dead rank.
        rank: usize,
        /// Stable comm-error kind string.
        kind: String,
    },
    /// No usable payload arrived (late, malformed, or CRC-corrupt).
    Missing {
        /// The silent rank.
        rank: usize,
    },
}

impl RankPayload {
    fn rank(&self) -> usize {
        match self {
            RankPayload::Telemetry(t) => t.rank,
            RankPayload::Down { rank, .. } | RankPayload::Missing { rank } => *rank,
        }
    }
}

// ---------------------------------------------------------------------
// Label interning
// ---------------------------------------------------------------------

/// Deserialized span labels must become `&'static str` to fit
/// [`FinishedSpan`]. The label universe is the fixed set of `span!`
/// literals (a few dozen strings), so leaking one copy of each per
/// process is bounded; lookups reuse previously interned labels.
static INTERNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

fn intern(label: &str) -> &'static str {
    let mut table = INTERNED.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(&hit) = table.iter().find(|&&l| l == label) {
        return hit;
    }
    let leaked: &'static str = Box::leak(label.to_string().into_boxed_str());
    table.push(leaked);
    leaked
}

// ---------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(MAX_STR as usize);
    put_u32(out, len as u32);
    out.extend_from_slice(&bytes[..len]);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!("telemetry payload truncated at {what}"));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn count(&mut self, max: u32, what: &str) -> Result<usize, String> {
        let n = self.u32(what)?;
        if n > max {
            return Err(format!("telemetry {what} count {n} exceeds cap {max}"));
        }
        Ok(n as usize)
    }

    fn str(&mut self, what: &str) -> Result<String, String> {
        let n = self.count(MAX_STR, what)?;
        let bytes = self.take(n, what)?;
        Ok(String::from_utf8_lossy(bytes).into_owned())
    }

    fn bucket_list(&mut self, what: &str) -> Result<Vec<u64>, String> {
        let n = self.count(MAX_BUCKETS, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64(what)?);
        }
        Ok(out)
    }
}

/// Serializes a [`RankTelemetry`] into the compact binary payload
/// format. The inverse of [`decode_telemetry`].
pub fn encode_telemetry(t: &RankTelemetry) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + 36 * t.spans.len());
    put_u32(&mut out, MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u32(&mut out, t.rank as u32);
    put_u32(&mut out, t.size as u32);

    // Label table: spans reference labels by table index.
    let mut labels: Vec<&'static str> = Vec::new();
    let mut label_id = Vec::with_capacity(t.spans.len());
    for span in &t.spans {
        let id = match labels.iter().position(|&l| l == span.label) {
            Some(i) => i,
            None => {
                labels.push(span.label);
                labels.len() - 1
            }
        };
        label_id.push(id as u32);
    }
    put_u32(&mut out, labels.len() as u32);
    for label in &labels {
        put_str(&mut out, label);
    }

    put_u64(&mut out, t.spans.len() as u64);
    for (span, &id) in t.spans.iter().zip(&label_id) {
        put_u32(&mut out, id);
        put_u64(&mut out, span.index);
        put_u64(&mut out, span.start_ns);
        put_u64(&mut out, span.end_ns);
        put_u32(&mut out, span.depth);
        put_u32(&mut out, span.tid);
    }

    put_u32(&mut out, t.threads.len() as u32);
    for (tid, name) in &t.threads {
        put_u32(&mut out, *tid);
        put_str(&mut out, name);
    }

    put_u32(&mut out, t.counters.len() as u32);
    for (name, value) in &t.counters {
        put_str(&mut out, name);
        put_u64(&mut out, *value);
    }

    put_u32(&mut out, t.comm.len() as u32);
    for row in &t.comm {
        put_str(&mut out, &row.op);
        put_str(&mut out, &row.kind);
        put_str(&mut out, &row.tag_class);
        put_u64(&mut out, row.frames);
        put_u64(&mut out, row.bytes);
        put_u64(&mut out, row.latency_ns);
        put_u32(
            &mut out,
            row.size_buckets.len().min(MAX_BUCKETS as usize) as u32,
        );
        for b in row.size_buckets.iter().take(MAX_BUCKETS as usize) {
            put_u64(&mut out, *b);
        }
        put_u32(
            &mut out,
            row.latency_buckets.len().min(MAX_BUCKETS as usize) as u32,
        );
        for b in row.latency_buckets.iter().take(MAX_BUCKETS as usize) {
            put_u64(&mut out, *b);
        }
    }
    out
}

/// Parses and validates a payload produced by [`encode_telemetry`].
/// Any structural problem — wrong magic, truncation, implausible
/// counts, out-of-range label references — is a typed `Err`, never a
/// panic: the receiving side degrades it to a `missing` rank.
pub fn decode_telemetry(bytes: &[u8]) -> Result<RankTelemetry, String> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let magic = r.u32("magic")?;
    if magic != MAGIC {
        return Err(format!("bad telemetry magic {magic:#x}"));
    }
    let version = r.u32("format version")?;
    if version != FORMAT_VERSION {
        return Err(format!("unsupported telemetry format version {version}"));
    }
    let rank = r.u32("rank")? as usize;
    let size = r.u32("size")? as usize;

    let n_labels = r.count(MAX_LABELS, "label")?;
    let mut labels = Vec::with_capacity(n_labels);
    for _ in 0..n_labels {
        labels.push(intern(&r.str("label")?));
    }

    let n_spans = r.u64("span count")?;
    if n_spans > MAX_SPANS {
        return Err(format!("telemetry span count {n_spans} exceeds cap"));
    }
    let mut spans = Vec::with_capacity(n_spans as usize);
    for _ in 0..n_spans {
        let id = r.u32("span label id")? as usize;
        let label = *labels
            .get(id)
            .ok_or_else(|| format!("span label id {id} out of range"))?;
        let index = r.u64("span index")?;
        let start_ns = r.u64("span start")?;
        let end_ns = r.u64("span end")?;
        let depth = r.u32("span depth")?;
        let tid = r.u32("span tid")?;
        spans.push(FinishedSpan {
            label,
            index,
            start_ns,
            end_ns,
            depth,
            tid,
        });
    }

    let n_threads = r.count(MAX_LIST, "thread")?;
    let mut threads = Vec::with_capacity(n_threads);
    for _ in 0..n_threads {
        let tid = r.u32("thread id")?;
        threads.push((tid, r.str("thread name")?));
    }

    let n_counters = r.count(MAX_LIST, "counter")?;
    let mut counters = Vec::with_capacity(n_counters);
    for _ in 0..n_counters {
        let name = r.str("counter name")?;
        counters.push((name, r.u64("counter value")?));
    }

    let n_comm = r.count(MAX_LIST, "comm row")?;
    let mut comm = Vec::with_capacity(n_comm);
    for _ in 0..n_comm {
        comm.push(CommRow {
            op: r.str("comm op")?,
            kind: r.str("comm kind")?,
            tag_class: r.str("comm tag class")?,
            frames: r.u64("comm frames")?,
            bytes: r.u64("comm bytes")?,
            latency_ns: r.u64("comm latency")?,
            size_buckets: r.bucket_list("comm size buckets")?,
            latency_buckets: r.bucket_list("comm latency buckets")?,
        });
    }
    if r.pos != bytes.len() {
        return Err(format!(
            "telemetry payload has {} trailing bytes",
            bytes.len() - r.pos
        ));
    }
    Ok(RankTelemetry {
        rank,
        size,
        spans,
        threads,
        counters,
        comm,
    })
}

// ---------------------------------------------------------------------
// Merge stash
// ---------------------------------------------------------------------

#[derive(Default)]
struct Stash {
    remote: Vec<RankPayload>,
    predicted_costs: Vec<u64>,
}

static STASH: Mutex<Option<Stash>> = Mutex::new(None);

fn with_stash<T>(f: impl FnOnce(&mut Stash) -> T) -> T {
    let mut guard = STASH.lock().unwrap_or_else(|p| p.into_inner());
    f(guard.get_or_insert_with(Stash::default))
}

/// Records one remote rank's payload (or degradation marker) for the
/// next report assembly on this process. Later submissions for the
/// same rank replace earlier ones.
pub fn submit_remote(payload: RankPayload) {
    with_stash(|s| {
        s.remote.retain(|p| p.rank() != payload.rank());
        s.remote.push(payload);
    });
}

/// Records the scheduler's predicted per-group cost bins
/// (`groups::plan_groups` output), indexed by rank, for the imbalance
/// section of the next merged report.
pub fn set_predicted_costs(costs: Vec<u64>) {
    with_stash(|s| s.predicted_costs = costs);
}

/// Drains the stash: every submitted remote payload plus the predicted
/// cost bins. Called once per report assembly.
pub fn take_stash() -> (Vec<RankPayload>, Vec<u64>) {
    with_stash(|s| {
        (
            std::mem::take(&mut s.remote),
            std::mem::take(&mut s.predicted_costs),
        )
    })
}

/// Clears the stash (part of [`crate::reset`]).
pub(crate) fn clear_stash() {
    with_stash(|s| {
        s.remote.clear();
        s.predicted_costs.clear();
    });
}

// ---------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------

/// Total `PEtot_F` seconds per SCF iteration on one rank, from pairing
/// `petot_f` spans with the enclosing indexed `scf_iter` span on the
/// same thread.
fn petot_per_iteration(spans: &[FinishedSpan]) -> Vec<(u64, f64)> {
    let iters: Vec<&FinishedSpan> = spans
        .iter()
        .filter(|s| s.label == "scf_iter" && s.index != NO_INDEX)
        .collect();
    let mut out: Vec<(u64, f64)> = Vec::new();
    for span in spans.iter().filter(|s| s.label == "petot_f") {
        let Some(iter) = iters
            .iter()
            .find(|i| i.tid == span.tid && span.start_ns >= i.start_ns && span.end_ns <= i.end_ns)
        else {
            continue;
        };
        match out.iter_mut().find(|(it, _)| *it == iter.index) {
            Some((_, sec)) => *sec += span.seconds(),
            None => out.push((iter.index, span.seconds())),
        }
    }
    out.sort_by_key(|&(it, _)| it);
    out
}

fn label_seconds(spans: &[FinishedSpan], pred: impl Fn(&str) -> bool) -> f64 {
    spans
        .iter()
        .filter(|s| pred(s.label))
        .map(FinishedSpan::seconds)
        .sum()
}

fn section_from_telemetry(t: &RankTelemetry) -> RankSection {
    let (span_rows, _) = crate::report::aggregate_spans(&t.spans, "frag");
    RankSection {
        rank: t.rank,
        status: RankStatus::Up,
        counters: t.counters.clone(),
        spans: span_rows,
        petot_iterations: petot_per_iteration(&t.spans),
        comm_wait_seconds: label_seconds(&t.spans, |l| l.starts_with("comm_")),
        compute_seconds: label_seconds(&t.spans, |l| l == "petot_f"),
        comm: t.comm.clone(),
    }
}

fn empty_section(rank: usize, status: RankStatus) -> RankSection {
    RankSection {
        rank,
        status,
        counters: Vec::new(),
        spans: Vec::new(),
        petot_iterations: Vec::new(),
        comm_wait_seconds: 0.0,
        compute_seconds: 0.0,
        comm: Vec::new(),
    }
}

/// `max / mean` of a positive series; `None` when the series is empty
/// or sums to zero (no meaningful ratio).
fn max_over_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let sum: f64 = values.iter().sum();
    if sum <= 0.0 {
        return None;
    }
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    Some(max * values.len() as f64 / sum)
}

/// Folds the local harvest plus stashed remote payloads into `report`:
/// fills the schema-v2 `ranks` section, sets `telemetry_incomplete`,
/// and derives the `straggler_gap`, `imbalance`, and
/// `comm_attribution` extras. `predicted_costs` are the scheduler's
/// per-group cost bins indexed by rank (empty when unknown).
pub fn merge_ranks(
    report: &mut Report,
    local: RankTelemetry,
    remote: Vec<RankPayload>,
    predicted_costs: &[u64],
) {
    use crate::json::Json;

    let size = local.size.max(1);
    let mut sections: Vec<RankSection> = Vec::with_capacity(size);
    sections.push(section_from_telemetry(&local));
    for r in 1..size {
        let payload = remote.iter().find(|p| p.rank() == r);
        sections.push(match payload {
            Some(RankPayload::Telemetry(t)) => section_from_telemetry(t),
            Some(RankPayload::Down { rank, kind }) => {
                empty_section(*rank, RankStatus::Down { kind: kind.clone() })
            }
            Some(RankPayload::Missing { rank }) => empty_section(*rank, RankStatus::Missing),
            None => empty_section(r, RankStatus::Missing),
        });
    }
    let incomplete = sections.iter().any(|s| !matches!(s.status, RankStatus::Up));

    // Per-iteration straggler gap: max−min PEtot_F seconds across the
    // ranks reporting that iteration.
    let mut iterations: Vec<u64> = sections
        .iter()
        .flat_map(|s| s.petot_iterations.iter().map(|&(it, _)| it))
        .collect();
    iterations.sort_unstable();
    iterations.dedup();
    let straggler = Json::Arr(
        iterations
            .iter()
            .map(|&it| {
                let times: Vec<f64> = sections
                    .iter()
                    .filter_map(|s| {
                        s.petot_iterations
                            .iter()
                            .find(|&&(i, _)| i == it)
                            .map(|&(_, sec)| sec)
                    })
                    .collect();
                let max = times.iter().cloned().fold(f64::MIN, f64::max);
                let min = times.iter().cloned().fold(f64::MAX, f64::min);
                Json::obj(vec![
                    ("iteration", Json::num(it as f64)),
                    ("max_seconds", Json::num(max)),
                    ("min_seconds", Json::num(min)),
                    ("gap_seconds", Json::num((max - min).max(0.0))),
                    ("ranks_reporting", Json::num(times.len() as f64)),
                ])
            })
            .collect(),
    );

    // Imbalance: measured PEtot_F totals vs the scheduler's predicted
    // cost bins, both summarized as max/mean.
    let measured: Vec<f64> = sections
        .iter()
        .map(|s| s.petot_iterations.iter().map(|&(_, sec)| sec).sum())
        .collect();
    let predicted: Vec<f64> = predicted_costs.iter().map(|&c| c as f64).collect();
    let per_rank = Json::Arr(
        sections
            .iter()
            .enumerate()
            .map(|(r, s)| {
                Json::obj(vec![
                    ("rank", Json::num(r as f64)),
                    (
                        "predicted_cost",
                        predicted.get(r).copied().map_or(Json::Null, Json::num),
                    ),
                    ("measured_petot_seconds", Json::num(measured[r])),
                    (
                        "status",
                        Json::str(match &s.status {
                            RankStatus::Up => "up",
                            RankStatus::Down { .. } => "down",
                            RankStatus::Missing => "missing",
                        }),
                    ),
                ])
            })
            .collect(),
    );
    let imbalance = Json::obj(vec![
        (
            "measured_ratio",
            max_over_mean(&measured).map_or(Json::Null, Json::num),
        ),
        (
            "predicted_ratio",
            max_over_mean(&predicted).map_or(Json::Null, Json::num),
        ),
        ("per_rank", per_rank),
    ]);

    // Comm wait vs compute: comm_* span seconds vs PEtot_F span
    // seconds, per rank and world-total.
    let comm_wait: f64 = sections.iter().map(|s| s.comm_wait_seconds).sum();
    let compute: f64 = sections.iter().map(|s| s.compute_seconds).sum();
    let fraction = if comm_wait + compute > 0.0 {
        comm_wait / (comm_wait + compute)
    } else {
        0.0
    };
    let attribution = Json::obj(vec![
        ("comm_wait_seconds", Json::num(comm_wait)),
        ("compute_seconds", Json::num(compute)),
        ("comm_fraction", Json::num(fraction)),
        (
            "per_rank",
            Json::Arr(
                sections
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("rank", Json::num(s.rank as f64)),
                            ("comm_wait_seconds", Json::num(s.comm_wait_seconds)),
                            ("compute_seconds", Json::num(s.compute_seconds)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);

    report
        .extra
        .retain(|(k, _)| k != "straggler_gap" && k != "imbalance" && k != "comm_attribution");
    report.extra.push(("straggler_gap".to_string(), straggler));
    report.extra.push(("imbalance".to_string(), imbalance));
    report
        .extra
        .push(("comm_attribution".to_string(), attribution));
    report.ranks = sections;
    report.telemetry_incomplete = incomplete;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn span(
        label: &'static str,
        index: u64,
        start_ns: u64,
        end_ns: u64,
        depth: u32,
        tid: u32,
    ) -> FinishedSpan {
        FinishedSpan {
            label,
            index,
            start_ns,
            end_ns,
            depth,
            tid,
        }
    }

    fn sample(rank: usize) -> RankTelemetry {
        RankTelemetry {
            rank,
            size: 2,
            spans: vec![
                span("scf_iter", 1, 0, 1_000_000, 0, 0),
                span("petot_f", NO_INDEX, 100, 800_000, 1, 0),
                span("comm_bcast", NO_INDEX, 850_000, 950_000, 1, 0),
                span("scf_iter", 2, 1_000_000, 2_000_000, 0, 0),
                span("petot_f", NO_INDEX, 1_000_100, 1_600_000, 1, 0),
            ],
            threads: vec![(0, "main".to_string())],
            counters: vec![
                ("fragment_solves".to_string(), 8),
                ("comm_bytes_sent".to_string(), 4096),
            ],
            comm: vec![CommRow {
                op: "send".to_string(),
                kind: "data".to_string(),
                tag_class: "user".to_string(),
                frames: 4,
                bytes: 4096,
                latency_ns: 12_000,
                size_buckets: vec![0, 0, 4],
                latency_buckets: vec![1, 3],
            }],
        }
    }

    #[test]
    fn codec_round_trips_every_field() {
        let t = sample(1);
        let bytes = encode_telemetry(&t);
        let back = decode_telemetry(&bytes).expect("round trip");
        assert_eq!((back.rank, back.size), (1, 2));
        assert_eq!(back.spans.len(), t.spans.len());
        for (a, b) in t.spans.iter().zip(&back.spans) {
            assert_eq!(a.label, b.label);
            assert_eq!(
                (a.index, a.start_ns, a.end_ns, a.depth, a.tid),
                (b.index, b.start_ns, b.end_ns, b.depth, b.tid)
            );
        }
        assert_eq!(back.threads, t.threads);
        assert_eq!(back.counters, t.counters);
        assert_eq!(back.comm, t.comm);
    }

    #[test]
    fn corrupt_payloads_fail_typed_never_panic() {
        let bytes = encode_telemetry(&sample(1));
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(decode_telemetry(&bad).is_err());
        // Truncation at every prefix length must be a typed error.
        for cut in 0..bytes.len() {
            assert!(decode_telemetry(&bytes[..cut]).is_err(), "cut={cut}");
        }
        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.extend_from_slice(&[1, 2, 3]);
        assert!(decode_telemetry(&bad).is_err());
    }

    #[test]
    fn world_identity_round_trips_and_clamps() {
        set_rank(3, 8);
        assert_eq!((rank(), world_size()), (3, 8));
        set_rank(9, 4); // clamped below size
        assert_eq!((rank(), world_size()), (3, 4));
        set_rank(0, 0); // size clamps to 1
        assert_eq!((rank(), world_size()), (0, 1));
    }

    #[test]
    fn merge_builds_ranks_straggler_and_attribution() {
        let mut report = Report::new("merge-test", 1.0);
        let local = sample(0);
        let remote = vec![RankPayload::Telemetry(sample(1))];
        merge_ranks(&mut report, local, remote, &[10, 12]);
        assert_eq!(report.ranks.len(), 2);
        assert!(!report.telemetry_incomplete);
        assert!(report
            .ranks
            .iter()
            .all(|s| matches!(s.status, RankStatus::Up)));
        // Two iterations of petot_f on each rank.
        assert_eq!(report.ranks[0].petot_iterations.len(), 2);
        let extra = |k: &str| {
            report
                .extra
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v)
                .expect(k)
        };
        let straggler = extra("straggler_gap");
        assert_eq!(straggler.as_array().map(|a| a.len()), Some(2));
        let imb = extra("imbalance");
        assert!(imb.get("measured_ratio").and_then(Json::as_f64).is_some());
        assert!(imb.get("predicted_ratio").and_then(Json::as_f64).is_some());
        let attr = extra("comm_attribution");
        let frac = attr
            .get("comm_fraction")
            .and_then(Json::as_f64)
            .expect("fraction");
        assert!((0.0..=1.0).contains(&frac));
        assert!(frac > 0.0, "comm_bcast spans must register as wait");
    }

    #[test]
    fn merge_marks_down_and_missing_ranks_incomplete() {
        let mut report = Report::new("merge-test", 1.0);
        let mut local = sample(0);
        local.size = 3;
        let remote = vec![RankPayload::Down {
            rank: 1,
            kind: "rank_down".to_string(),
        }];
        merge_ranks(&mut report, local, remote, &[]);
        assert_eq!(report.ranks.len(), 3);
        assert!(report.telemetry_incomplete);
        assert!(
            matches!(&report.ranks[1].status, RankStatus::Down { kind } if kind == "rank_down")
        );
        assert!(matches!(report.ranks[2].status, RankStatus::Missing));
    }

    #[test]
    fn stash_drains_and_replaces_by_rank() {
        clear_stash();
        submit_remote(RankPayload::Missing { rank: 1 });
        submit_remote(RankPayload::Telemetry(sample(1)));
        set_predicted_costs(vec![5, 7]);
        let (remote, costs) = take_stash();
        assert_eq!(remote.len(), 1, "later submission replaces earlier");
        assert!(matches!(&remote[0], RankPayload::Telemetry(t) if t.rank == 1));
        assert_eq!(costs, vec![5, 7]);
        let (remote, costs) = take_stash();
        assert!(remote.is_empty() && costs.is_empty());
    }
}
