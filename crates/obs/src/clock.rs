//! Monotonic time sources.
//!
//! Two consumers with different needs share one clock here:
//!
//! * [`Stopwatch`] — the *always-available* coarse timer the SCF driver
//!   uses for its per-stage [`StepTimings`] — those timings are part of
//!   the driver's public result and must exist whether or not span
//!   collection is compiled in. This is also the sanctioned replacement
//!   for ad-hoc `std::time::Instant` in the instrumented crates (the
//!   `raw-timer` xtask-lint rule forbids the latter).
//! * the span layer — needs nanosecond offsets from a single process-wide
//!   epoch so events from different threads land on one timeline
//!   ([`epoch_nanos`]).
//!
//! [`StepTimings`]: https://docs.rs/ls3df-core

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide observability epoch (lazily fixed
/// at the first call from any thread). Saturates at `u64::MAX` — ~584
/// years of process uptime.
pub fn epoch_nanos() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A started wall-clock timer: [`Stopwatch::start`], do work, read
/// [`Stopwatch::seconds`].
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_monotone() {
        let a = epoch_nanos();
        let b = epoch_nanos();
        assert!(b >= a);
    }

    #[test]
    fn stopwatch_reads_nonnegative() {
        let sw = Stopwatch::start();
        assert!(sw.seconds() >= 0.0);
    }
}
