//! Minimal JSON value, renderer, and parser.
//!
//! The workspace builds offline with no registry access, so the report
//! layer carries its own ~200-line JSON implementation instead of
//! serde. Scope: everything the run-report schema needs — objects keep
//! insertion order, numbers are `f64` (report counters stay well below
//! 2^53), strings get full escape handling. Not scope: streaming,
//! arbitrary-precision numbers, or non-UTF-8 input.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers render without a decimal point).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when rendering.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Number constructor; non-finite values become `null`.
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs, if it is one.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => render_number(out, *v),
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    render_string(out, k);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (exactly one value plus whitespace).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        // `{:?}` is Rust's shortest round-trip float formatting.
        let _ = write!(out, "{v:?}");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {pos}, found {:?}",
            b as char,
            bytes.get(*pos).map(|&c| c as char),
            pos = *pos
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy a full UTF-8 scalar so multi-byte chars survive.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_report_shaped_document() {
        let doc = Json::obj(vec![
            ("schema", Json::str("ls3df-run-report")),
            ("schema_version", Json::num(1.0)),
            ("obs_enabled", Json::Bool(true)),
            ("wall_seconds", Json::num(1.5)),
            ("note", Json::str("line1\nline2 \"quoted\" τ")),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            (
                "rows",
                Json::Arr(vec![Json::num(1.0), Json::Null, Json::num(0.125)]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).expect("parse back");
        assert_eq!(back, doc);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        let mut s = String::new();
        render_number(&mut s, 42.0);
        assert_eq!(s, "42");
        let mut s = String::new();
        render_number(&mut s, 0.1);
        assert_eq!(s, "0.1");
        let mut s = String::new();
        render_number(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = Json::parse("{\"a\": {\"b\": [1, true, \"s\"]}}").expect("parse");
        let arr = doc
            .get("a")
            .and_then(|a| a.get("b"))
            .and_then(Json::as_array)
            .expect("array");
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_bool(), Some(true));
        assert_eq!(arr[2].as_str(), Some("s"));
    }
}
