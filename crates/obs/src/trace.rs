//! chrome://tracing export: spans as Trace Event Format JSON.
//!
//! Writes the classic array-of-events form understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one
//! `"ph": "X"` (complete) event per span with microsecond timestamps,
//! preceded by `"ph": "M"` metadata events naming each thread lane
//! (the pool's `ls3df-worker-{i}` names show up as lanes).

use crate::json::Json;
use crate::span::FinishedSpan;
use std::io::Write as _;
use std::path::Path;

/// Renders spans and thread names as a Trace Event Format document.
pub fn chrome_trace_json(spans: &[FinishedSpan], threads: &[(u32, String)]) -> Json {
    let mut events: Vec<Json> = Vec::with_capacity(spans.len() + threads.len());
    for (tid, name) in threads {
        events.push(Json::obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::num(1.0)),
            ("tid", Json::num(f64::from(*tid))),
            ("args", Json::obj(vec![("name", Json::str(&**name))])),
        ]));
    }
    for span in spans {
        events.push(Json::obj(vec![
            ("name", Json::str(span.display_label())),
            ("ph", Json::str("X")),
            ("pid", Json::num(1.0)),
            ("tid", Json::num(f64::from(span.tid))),
            ("ts", Json::num(span.start_ns as f64 * 1e-3)),
            (
                "dur",
                Json::num(span.end_ns.saturating_sub(span.start_ns) as f64 * 1e-3),
            ),
        ]));
    }
    Json::Arr(events)
}

/// Writes the trace-event file to `path` (truncating). Load it in
/// `chrome://tracing` or Perfetto to see the run on a timeline.
pub fn write_chrome_trace(
    path: &Path,
    spans: &[FinishedSpan],
    threads: &[(u32, String)],
) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(chrome_trace_json(spans, threads).render().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::NO_INDEX;

    #[test]
    fn trace_events_carry_lane_metadata_and_microseconds() {
        let spans = [FinishedSpan {
            label: "petot_f",
            index: NO_INDEX,
            start_ns: 2_000,
            end_ns: 5_000,
            depth: 0,
            tid: 3,
        }];
        let threads = [(3, "ls3df-worker-3".to_string())];
        let doc = chrome_trace_json(&spans, &threads);
        let events = doc.as_array().expect("array");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("M"));
        let x = &events[1];
        assert_eq!(x.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(x.get("ts").and_then(Json::as_f64), Some(2.0));
        assert_eq!(x.get("dur").and_then(Json::as_f64), Some(3.0));
    }
}
