//! chrome://tracing export: spans as Trace Event Format JSON.
//!
//! Writes the classic array-of-events form understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one
//! `"ph": "X"` (complete) event per span with microsecond timestamps,
//! preceded by `"ph": "M"` metadata events naming each thread lane
//! (the pool's `ls3df-worker-{i}` names show up as lanes).
//!
//! Multi-rank runs use the [`TraceLane`] form: each rank's harvest
//! becomes one *process* lane (`pid` = rank) with its own thread rows,
//! so fragment solves, collectives, and idle gaps across the whole
//! world share a single timeline. Each lane's clock is its own
//! process-local epoch, so lanes are normalized to start at t=0 —
//! cross-rank alignment is approximate (per-process epochs are taken
//! at slightly different wall times), which is fine for reading gaps
//! and overlaps but not for sub-millisecond cross-rank ordering.

use crate::json::Json;
use crate::span::FinishedSpan;
use std::io::Write as _;
use std::path::Path;

/// One rank's slice of a multi-lane trace: the rank id (becomes the
/// trace `pid`), a lane label, and the rank's harvested spans/threads.
pub struct TraceLane<'a> {
    /// Rank id; rendered as the trace event `pid`.
    pub pid: u64,
    /// Lane label shown by the viewer (e.g. `"rank 1"`).
    pub name: String,
    /// The rank's finished spans.
    pub spans: &'a [FinishedSpan],
    /// The rank's `(thread id, thread name)` table.
    pub threads: &'a [(u32, String)],
}

/// Renders spans and thread names as a Trace Event Format document.
pub fn chrome_trace_json(spans: &[FinishedSpan], threads: &[(u32, String)]) -> Json {
    let mut events: Vec<Json> = Vec::with_capacity(spans.len() + threads.len());
    for (tid, name) in threads {
        events.push(Json::obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::num(1.0)),
            ("tid", Json::num(f64::from(*tid))),
            ("args", Json::obj(vec![("name", Json::str(&**name))])),
        ]));
    }
    for span in spans {
        events.push(Json::obj(vec![
            ("name", Json::str(span.display_label())),
            ("ph", Json::str("X")),
            ("pid", Json::num(1.0)),
            ("tid", Json::num(f64::from(span.tid))),
            ("ts", Json::num(span.start_ns as f64 * 1e-3)),
            (
                "dur",
                Json::num(span.end_ns.saturating_sub(span.start_ns) as f64 * 1e-3),
            ),
        ]));
    }
    Json::Arr(events)
}

/// Renders a multi-rank trace: one process lane per [`TraceLane`] with
/// `pid` = rank, each normalized to start at t=0 (see the module docs
/// for the alignment caveat).
pub fn chrome_trace_json_lanes(lanes: &[TraceLane<'_>]) -> Json {
    let mut events: Vec<Json> = Vec::new();
    for lane in lanes {
        let pid = lane.pid as f64;
        let t0 = lane.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        events.push(Json::obj(vec![
            ("name", Json::str("process_name")),
            ("ph", Json::str("M")),
            ("pid", Json::num(pid)),
            ("args", Json::obj(vec![("name", Json::str(&*lane.name))])),
        ]));
        for (tid, name) in lane.threads {
            events.push(Json::obj(vec![
                ("name", Json::str("thread_name")),
                ("ph", Json::str("M")),
                ("pid", Json::num(pid)),
                ("tid", Json::num(f64::from(*tid))),
                ("args", Json::obj(vec![("name", Json::str(&**name))])),
            ]));
        }
        for span in lane.spans {
            events.push(Json::obj(vec![
                ("name", Json::str(span.display_label())),
                ("ph", Json::str("X")),
                ("pid", Json::num(pid)),
                ("tid", Json::num(f64::from(span.tid))),
                (
                    "ts",
                    Json::num(span.start_ns.saturating_sub(t0) as f64 * 1e-3),
                ),
                (
                    "dur",
                    Json::num(span.end_ns.saturating_sub(span.start_ns) as f64 * 1e-3),
                ),
            ]));
        }
    }
    Json::Arr(events)
}

/// Writes a multi-lane trace-event file to `path` (truncating).
pub fn write_chrome_trace_lanes(path: &Path, lanes: &[TraceLane<'_>]) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(chrome_trace_json_lanes(lanes).render().as_bytes())
}

/// Writes the trace-event file to `path` (truncating). Load it in
/// `chrome://tracing` or Perfetto to see the run on a timeline.
pub fn write_chrome_trace(
    path: &Path,
    spans: &[FinishedSpan],
    threads: &[(u32, String)],
) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(chrome_trace_json(spans, threads).render().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::NO_INDEX;

    #[test]
    fn trace_events_carry_lane_metadata_and_microseconds() {
        let spans = [FinishedSpan {
            label: "petot_f",
            index: NO_INDEX,
            start_ns: 2_000,
            end_ns: 5_000,
            depth: 0,
            tid: 3,
        }];
        let threads = [(3, "ls3df-worker-3".to_string())];
        let doc = chrome_trace_json(&spans, &threads);
        let events = doc.as_array().expect("array");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("M"));
        let x = &events[1];
        assert_eq!(x.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(x.get("ts").and_then(Json::as_f64), Some(2.0));
        assert_eq!(x.get("dur").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn lanes_get_one_pid_per_rank_and_normalized_clocks() {
        let rank0 = [FinishedSpan {
            label: "scf_iter",
            index: 1,
            start_ns: 10_000,
            end_ns: 20_000,
            depth: 0,
            tid: 0,
        }];
        let rank1 = [FinishedSpan {
            label: "petot_f",
            index: NO_INDEX,
            start_ns: 500_000, // a later process-local epoch offset
            end_ns: 504_000,
            depth: 0,
            tid: 0,
        }];
        let threads = [(0u32, "main".to_string())];
        let lanes = [
            TraceLane {
                pid: 0,
                name: "rank 0".to_string(),
                spans: &rank0,
                threads: &threads,
            },
            TraceLane {
                pid: 1,
                name: "rank 1".to_string(),
                spans: &rank1,
                threads: &threads,
            },
        ];
        let doc = chrome_trace_json_lanes(&lanes);
        let events = doc.as_array().expect("array");
        // Per lane: process_name + thread_name + one X event.
        assert_eq!(events.len(), 6);
        let process_names: Vec<f64> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .filter_map(|e| e.get("pid").and_then(Json::as_f64))
            .collect();
        assert_eq!(process_names, vec![0.0, 1.0]);
        let xs: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 2);
        // Both lanes start at t=0 despite different local epochs.
        assert_eq!(xs[0].get("ts").and_then(Json::as_f64), Some(0.0));
        assert_eq!(xs[1].get("ts").and_then(Json::as_f64), Some(0.0));
        assert_eq!(xs[1].get("pid").and_then(Json::as_f64), Some(1.0));
    }
}
