//! Hierarchical scoped span timers with thread-local buffers.
//!
//! A span is opened with the [`span!`](crate::span!) macro and closed
//! when the returned [`SpanGuard`] drops:
//!
//! ```
//! {
//!     let _g = ls3df_obs::span!("petot_f");
//!     // ... work ...
//!     let _inner = ls3df_obs::span!("frag", 3);
//! } // both spans close here, innermost first
//! ```
//!
//! Collection model: each thread buffers its finished spans in a
//! `thread_local!` `Vec` and tracks its own nesting depth. When a
//! *root* span (depth 0) closes, the buffer is drained into a global
//! mutex-protected sink — so the lock is taken once per root span per
//! thread, never inside the hot nesting. Worker threads of the
//! work-stealing pool additionally call [`flush_thread`] before parking
//! so nothing lingers in a sleeping worker's buffer.
//!
//! Thread identity is captured on first use: a dense id from a global
//! counter plus the OS thread name (the pool names its workers
//! `ls3df-worker-{i}`), which the chrome://tracing export surfaces as
//! lane labels.
//!
//! With the `enabled` feature off, [`SpanGuard`] is a zero-sized type
//! with no `Drop` impl and every function here is an empty
//! `#[inline(always)]` stub — a disabled span compiles to nothing.

/// Index value meaning "this span has no index" (plain `span!("label")`).
pub const NO_INDEX: u64 = u64::MAX;

/// One closed span, on the process-wide timeline of
/// [`epoch_nanos`](crate::clock::epoch_nanos).
#[derive(Clone, Debug)]
pub struct FinishedSpan {
    /// Static label from the `span!` call site.
    pub label: &'static str,
    /// Call-site index (fragment id, iteration, …) or [`NO_INDEX`].
    pub index: u64,
    /// Open time, ns since the obs epoch.
    pub start_ns: u64,
    /// Close time, ns since the obs epoch.
    pub end_ns: u64,
    /// Nesting depth on its thread at open time (0 = root).
    pub depth: u32,
    /// Dense id of the recording thread.
    pub tid: u32,
}

impl FinishedSpan {
    /// Span duration in seconds.
    pub fn seconds(&self) -> f64 {
        self.end_ns.saturating_sub(self.start_ns) as f64 * 1e-9
    }

    /// `label` or `label:index` for display.
    pub fn display_label(&self) -> String {
        if self.index == NO_INDEX {
            self.label.to_string()
        } else {
            format!("{}:{}", self.label, self.index)
        }
    }
}

/// Opens a scoped span; it closes when the returned guard drops.
///
/// `span!("label")` or `span!("label", index)` where `index` is any
/// integer (fragment id, iteration number). Labels must be `&'static
/// str` — use the index argument for dynamic parts rather than
/// formatting into the label.
#[macro_export]
macro_rules! span {
    ($label:expr) => {
        $crate::span::SpanGuard::enter($label)
    };
    ($label:expr, $index:expr) => {
        $crate::span::SpanGuard::enter_indexed($label, $index as u64)
    };
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{FinishedSpan, NO_INDEX};
    use crate::clock::epoch_nanos;
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Mutex;

    static NEXT_TID: AtomicU32 = AtomicU32::new(0);
    static SINK: Mutex<Vec<FinishedSpan>> = Mutex::new(Vec::new());
    static THREADS: Mutex<Vec<(u32, String)>> = Mutex::new(Vec::new());

    struct ThreadBuf {
        events: Vec<FinishedSpan>,
        depth: u32,
        tid: u32,
    }

    thread_local! {
        static BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::register());
    }

    fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        match m.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    impl ThreadBuf {
        fn register() -> Self {
            // ORDERING: Relaxed — a unique-id ticket: fetch_add's
            // atomicity guarantees distinct ids; no other memory is
            // published through this counter.
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map_or_else(|| format!("thread-{tid}"), str::to_string);
            lock(&THREADS).push((tid, name));
            ThreadBuf {
                events: Vec::new(),
                depth: 0,
                tid,
            }
        }
    }

    /// Scope timer: records a [`FinishedSpan`] when dropped.
    pub struct SpanGuard {
        label: &'static str,
        index: u64,
        start_ns: u64,
        depth: u32,
    }

    impl SpanGuard {
        /// Opens an unindexed span.
        #[inline]
        pub fn enter(label: &'static str) -> Self {
            Self::enter_indexed(label, NO_INDEX)
        }

        /// Opens a span carrying a call-site index.
        #[inline]
        pub fn enter_indexed(label: &'static str, index: u64) -> Self {
            let depth = BUF
                .try_with(|b| {
                    let mut b = b.borrow_mut();
                    let d = b.depth;
                    b.depth += 1;
                    d
                })
                .unwrap_or(0);
            SpanGuard {
                label,
                index,
                start_ns: epoch_nanos(),
                depth,
            }
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let end_ns = epoch_nanos();
            // try_with: a span dropped during thread teardown (after TLS
            // destruction) is silently lost rather than panicking.
            let _ = BUF.try_with(|b| {
                let mut b = b.borrow_mut();
                let tid = b.tid;
                b.events.push(FinishedSpan {
                    label: self.label,
                    index: self.index,
                    start_ns: self.start_ns,
                    end_ns,
                    depth: self.depth,
                    tid,
                });
                b.depth = b.depth.saturating_sub(1);
                if b.depth == 0 {
                    lock(&SINK).append(&mut b.events);
                }
            });
        }
    }

    /// Drains the calling thread's buffer into the global sink.
    pub fn flush_thread() {
        let _ = BUF.try_with(|b| {
            let mut b = b.borrow_mut();
            if !b.events.is_empty() {
                lock(&SINK).append(&mut b.events);
            }
        });
    }

    /// Takes every flushed span plus the thread-name registry (names are
    /// retained for subsequent drains; spans are not).
    pub fn drain() -> (Vec<FinishedSpan>, Vec<(u32, String)>) {
        let spans = std::mem::take(&mut *lock(&SINK));
        let threads = lock(&THREADS).clone();
        (spans, threads)
    }

    /// Discards all flushed spans.
    pub fn clear() {
        lock(&SINK).clear();
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::FinishedSpan;

    /// Scope timer (disabled build: zero-sized, records nothing).
    pub struct SpanGuard;

    impl SpanGuard {
        /// Opens an unindexed span (disabled: no-op).
        #[inline(always)]
        pub fn enter(_label: &'static str) -> Self {
            SpanGuard
        }

        /// Opens an indexed span (disabled: no-op).
        #[inline(always)]
        pub fn enter_indexed(_label: &'static str, _index: u64) -> Self {
            SpanGuard
        }
    }

    /// Disabled build: no-op.
    #[inline(always)]
    pub fn flush_thread() {}

    /// Disabled build: always empty.
    pub fn drain() -> (Vec<FinishedSpan>, Vec<(u32, String)>) {
        (Vec::new(), Vec::new())
    }

    /// Disabled build: no-op.
    #[inline(always)]
    pub fn clear() {}
}

pub use imp::{clear, drain, flush_thread, SpanGuard};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_is_zero_sized_when_disabled() {
        if !cfg!(feature = "enabled") {
            assert_eq!(size_of::<SpanGuard>(), 0);
        }
    }

    #[test]
    fn display_label_includes_index() {
        let s = FinishedSpan {
            label: "frag",
            index: 7,
            start_ns: 0,
            end_ns: 1_000_000_000,
            depth: 0,
            tid: 0,
        };
        assert_eq!(s.display_label(), "frag:7");
        assert!((s.seconds() - 1.0).abs() < 1e-12);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn nested_spans_record_depths_and_flush_at_root_close() {
        clear();
        {
            let _root = crate::span!("test_root");
            {
                let _child = crate::span!("test_child", 3);
            }
        }
        let (spans, threads) = drain();
        let root = spans.iter().find(|s| s.label == "test_root");
        let child = spans.iter().find(|s| s.label == "test_child");
        match (root, child) {
            (Some(r), Some(c)) => {
                assert_eq!(r.depth, 0);
                assert_eq!(c.depth, 1);
                assert_eq!(c.index, 3);
                assert!(c.start_ns >= r.start_ns && c.end_ns <= r.end_ns);
                assert!(threads.iter().any(|(tid, _)| *tid == r.tid));
            }
            _ => panic!("expected both spans to be recorded: {spans:?}"),
        }
    }
}
