//! # ls3df-obs
//!
//! Zero-external-dependency observability layer for the LS3DF
//! reproduction: see every flop the SCF loop spends.
//!
//! Three pieces, mirroring the paper's own reporting (per-stage times in
//! Fig. 2, sustained flop rates and %-of-peak in the scaling tables):
//!
//! * [`span!`] — hierarchical scoped span timers with thread-local
//!   buffers, aggregated across the work-stealing pool. Compiled to true
//!   no-ops (zero-sized guard, empty inlined functions) unless the
//!   `enabled` cargo feature is on.
//! * [`metrics`] — a registry of relaxed atomic counters: FFT
//!   line-transforms by plan kind, CG iterations per band, Hartree
//!   solves, mixer applications, retry-ladder rungs and quarantines,
//!   bytes through the FFT gather/scatter, and estimated flops.
//! * [`report`] — a schema-versioned JSON run report (per-stage and
//!   per-fragment times, counters, convergence history, Gflop/s and
//!   %-of-peak against a machine model) plus an optional
//!   chrome://tracing trace-event file ([`trace`]) and a paper-style
//!   per-stage summary table.
//!
//! The only piece that is *not* feature-gated is [`Stopwatch`] and the
//! report plumbing: stage wall-clock timings and `BENCH_*.json` emission
//! work in every build (reports then carry `"obs_enabled": false` and
//! empty span/counter sections).
//!
//! ## Overhead contract
//!
//! With `enabled` off, every probe is an `#[inline(always)]` empty
//! function and [`SpanGuard`](span::SpanGuard) is a zero-sized type with
//! no `Drop` impl: instrumented code is bit-identical in behavior to
//! uninstrumented code and the `petot_scaling` digest run must show no
//! measurable slowdown. With `enabled` on, probes may take a lock only
//! when a thread's root span closes (buffer flush); counter updates are
//! single relaxed atomic adds and span open/close is two monotonic clock
//! reads plus a `Vec` push.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
mod json;
pub mod metrics;
pub mod report;
pub mod span;
pub mod telemetry;
pub mod trace;

pub use clock::Stopwatch;
pub use json::Json;
pub use metrics::{counter_add, set_alloc_probe, Counter};
pub use report::{
    Attribution, FlopReport, MachineRef, RankSection, RankStatus, Report, SCHEMA_NAME,
    SCHEMA_VERSION,
};
pub use span::{flush_thread, FinishedSpan, NO_INDEX};
pub use telemetry::{set_rank, CommRow, RankPayload, RankTelemetry};

/// Whether span/counter collection is compiled in (`enabled` feature).
pub const ENABLED: bool = cfg!(feature = "enabled");

/// Everything the collection layer gathered since the last [`harvest`]:
/// finished spans (all threads), thread names, and a counter snapshot.
///
/// With collection disabled this is empty apart from any counters that
/// the alloc probe contributes.
#[derive(Clone, Debug, Default)]
pub struct RunData {
    /// Finished spans drained from every thread's buffer, in flush order.
    pub spans: Vec<FinishedSpan>,
    /// `(thread id, thread name)` for every thread that recorded spans.
    pub threads: Vec<(u32, String)>,
    /// Counter snapshot: `(name, value)` for every nonzero counter, plus
    /// `"allocations"` when an alloc probe is installed.
    pub counters: Vec<(&'static str, u64)>,
}

/// Flushes the calling thread's span buffer and drains the global sink,
/// returning every event recorded since the last call, together with a
/// counter snapshot. Counters are *not* reset; call [`reset`] for that.
pub fn harvest() -> RunData {
    flush_thread();
    let (spans, threads) = span::drain();
    RunData {
        spans,
        threads,
        counters: metrics::snapshot(),
    }
}

/// Clears all recorded spans, zeroes every counter, and drops any
/// stashed rank telemetry. For tests and for bench bins that time
/// several independent runs in one process.
pub fn reset() {
    span::clear();
    metrics::reset();
    telemetry::clear_stash();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_flag_matches_feature() {
        assert_eq!(ENABLED, cfg!(feature = "enabled"));
    }
}
