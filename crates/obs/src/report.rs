//! Schema-versioned run reports: the `BENCH_*.json` format.
//!
//! A [`Report`] is the machine-readable record of one run — per-stage
//! and per-fragment times, the counter registry, convergence history,
//! and counter-derived Gflop/s with %-of-peak against a [`MachineRef`]
//! — plus a paper-style per-stage summary table for stdout
//! ([`Report::summary_table`]).
//!
//! The JSON layout is versioned: every document carries
//! `"schema": "ls3df-run-report"` and `"schema_version"`; readers
//! (including the `obs-report` CI step) validate with
//! [`validate_report_str`]. Bump [`SCHEMA_VERSION`] on any
//! backwards-incompatible field change and document the delta in
//! EXPERIMENTS.md.
//!
//! Reports are *not* feature-gated: a build without the `enabled`
//! feature still writes schema-valid reports (stage timings flow
//! through the always-on [`Stopwatch`](crate::Stopwatch) plumbing);
//! its span/counter sections are simply empty and
//! `"obs_enabled": false`.

use crate::json::Json;
use crate::span::{FinishedSpan, NO_INDEX};
use crate::RunData;
use std::io::Write as _;
use std::path::Path;

/// Value of the `"schema"` discriminator field.
pub const SCHEMA_NAME: &str = "ls3df-run-report";

/// Current schema version; see the module docs for the bump policy.
///
/// v2 adds the rank-aware sections: `ranks` (per-rank counters, span
/// aggregates, per-iteration `PEtot_F` times, comm-wait/compute split,
/// transport histograms, and an `up`/`down`/`missing` status) and the
/// `telemetry_incomplete` flag. [`validate_report_str`] still accepts
/// v1 (rank-less) documents for backward compatibility.
pub const SCHEMA_VERSION: u64 = 2;

/// The machine model a report rates itself against (name + peak rate).
/// Bench bins build this from `ls3df_hpc::MachineSpec`; obs itself
/// deliberately knows nothing about machine models.
#[derive(Clone, Debug)]
pub struct MachineRef {
    /// Model name (e.g. `franklin`, or a local host label).
    pub name: String,
    /// Peak rate in Gflop/s for the core count the run used.
    pub peak_gflops: f64,
}

/// Aggregate time spent in one named stage across the whole run.
#[derive(Clone, Debug)]
pub struct StageRow {
    /// Stage name (`Gen_VF`, `PEtot_F`, `Gen_dens`, `GENPOT`).
    pub name: String,
    /// Number of times the stage ran.
    pub calls: u64,
    /// Total seconds across all calls.
    pub seconds: f64,
}

/// One SCF outer iteration of the convergence history.
#[derive(Clone, Debug)]
pub struct StepRow {
    /// 1-based outer iteration number.
    pub iteration: u64,
    /// Convergence measure `∫|V_out − V_in| d³r`.
    pub dv_integral: f64,
    /// Worst fragment residual this iteration.
    pub worst_residual: f64,
    /// Per-stage seconds for this iteration, in stage order.
    pub stage_seconds: Vec<(String, f64)>,
}

/// Aggregate of every span sharing one hierarchical path.
#[derive(Clone, Debug)]
pub struct SpanRow {
    /// `/`-joined label path, e.g. `scf_iter/petot_f/frag`.
    pub path: String,
    /// Number of spans on this path.
    pub count: u64,
    /// Total inclusive seconds.
    pub total_seconds: f64,
    /// Seconds not covered by child spans.
    pub self_seconds: f64,
}

/// Aggregate time for one fragment across the run (from indexed spans).
#[derive(Clone, Debug)]
pub struct FragmentRow {
    /// Fragment index.
    pub index: u64,
    /// Number of supervised solves recorded.
    pub calls: u64,
    /// Total seconds inside this fragment's solve spans.
    pub seconds: f64,
}

/// Liveness of one rank in the merged report's `ranks` section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RankStatus {
    /// The rank shipped a well-formed telemetry payload.
    Up,
    /// The rank is known dead; `kind` is the stable comm-error kind
    /// string (`rank_down`, `timeout`, `protocol`, `io`, `bootstrap`).
    Down {
        /// Stable comm-error kind string.
        kind: String,
    },
    /// No usable payload arrived (late, malformed, or CRC-corrupt).
    Missing,
}

/// One rank's contribution to a merged multi-rank report (schema v2).
#[derive(Clone, Debug)]
pub struct RankSection {
    /// World rank.
    pub rank: usize,
    /// Whether the rank's telemetry arrived.
    pub status: RankStatus,
    /// The rank's counter snapshot (nonzero entries).
    pub counters: Vec<(String, u64)>,
    /// The rank's span aggregates by hierarchical path.
    pub spans: Vec<SpanRow>,
    /// `(iteration, seconds)` of `PEtot_F` time per SCF iteration —
    /// the straggler-gap series input.
    pub petot_iterations: Vec<(u64, f64)>,
    /// Seconds inside `comm_*` transport spans (blocking wait).
    pub comm_wait_seconds: f64,
    /// Seconds inside `PEtot_F` fragment-solve spans (compute).
    pub compute_seconds: f64,
    /// Transport histogram rows drained from the communicator.
    pub comm: Vec<crate::telemetry::CommRow>,
}

/// How much of the wall clock the named spans account for.
#[derive(Clone, Debug)]
pub struct Attribution {
    /// Seconds under the designated root spans.
    pub attributed_seconds: f64,
    /// `attributed_seconds / wall_seconds`, clamped to `[0, 1]`.
    pub fraction: f64,
}

/// Counter-derived flop accounting.
#[derive(Clone, Debug)]
pub struct FlopReport {
    /// Estimated Gflop spent (from the `fft_flops` counter).
    pub estimated_gflop: f64,
    /// Sustained Gflop/s over the wall clock.
    pub gflops: f64,
    /// `100 · gflops / machine.peak_gflops`, when a machine is given.
    pub percent_of_peak: Option<f64>,
}

/// One run's complete observability record; renders to the
/// `BENCH_*.json` schema via [`Report::to_json`] / [`Report::write`].
#[derive(Clone, Debug)]
pub struct Report {
    /// What produced the report (`fig6`, `petot_scaling`, a test name).
    pub command: String,
    /// Whether span/counter collection was compiled in.
    pub obs_enabled: bool,
    /// Wall-clock seconds for the reported run.
    pub wall_seconds: f64,
    /// Whether the SCF converged (`None` for non-SCF reports).
    pub converged: Option<bool>,
    /// Machine model for %-of-peak, if any.
    pub machine: Option<MachineRef>,
    /// Per-stage aggregate times.
    pub stages: Vec<StageRow>,
    /// Convergence history.
    pub steps: Vec<StepRow>,
    /// Counter registry snapshot (nonzero entries).
    pub counters: Vec<(String, u64)>,
    /// Span aggregates by hierarchical path.
    pub spans: Vec<SpanRow>,
    /// Per-fragment solve times.
    pub fragments: Vec<FragmentRow>,
    /// Wall-time attribution of the root spans.
    pub attribution: Option<Attribution>,
    /// Counter-derived flop rates.
    pub flops: Option<FlopReport>,
    /// Per-rank sections of a merged multi-rank report (schema v2).
    /// Single-process reports carry one entry when merged, none when
    /// the producer never merges.
    pub ranks: Vec<RankSection>,
    /// Whether any rank's telemetry was lost (down/missing rank) —
    /// the degradation flag, never an error.
    pub telemetry_incomplete: bool,
    /// Free-form producer-specific extras (digest, thread counts, …).
    pub extra: Vec<(String, Json)>,
}

impl Report {
    /// An empty report skeleton; producers fill the sections they have.
    pub fn new(command: &str, wall_seconds: f64) -> Report {
        Report {
            command: command.to_string(),
            obs_enabled: crate::ENABLED,
            wall_seconds,
            converged: None,
            machine: None,
            stages: Vec::new(),
            steps: Vec::new(),
            counters: Vec::new(),
            spans: Vec::new(),
            fragments: Vec::new(),
            attribution: None,
            flops: None,
            ranks: Vec::new(),
            telemetry_incomplete: false,
            extra: Vec::new(),
        }
    }

    /// Builds a report from harvested run data: aggregates spans into
    /// paths, extracts per-fragment rows from spans labeled
    /// `fragment_label`, attributes wall time to spans labeled
    /// `root_label`, and derives flop rates from the `fft_flops`
    /// counter. Stage/step/convergence sections are left for the caller
    /// (they come from the `ScfObserver` hooks, not from spans).
    pub fn from_run(
        command: &str,
        wall_seconds: f64,
        data: &RunData,
        machine: Option<MachineRef>,
        fragment_label: &str,
        root_label: &str,
    ) -> Report {
        let mut report = Report::new(command, wall_seconds);
        report.counters = data
            .counters
            .iter()
            .map(|&(name, value)| (name.to_string(), value))
            .collect();
        let (spans, fragments) = aggregate_spans(&data.spans, fragment_label);
        report.spans = spans;
        report.fragments = fragments;
        if crate::ENABLED {
            let attributed: f64 = data
                .spans
                .iter()
                .filter(|s| s.label == root_label)
                .map(FinishedSpan::seconds)
                .sum();
            let fraction = if wall_seconds > 0.0 {
                (attributed / wall_seconds).clamp(0.0, 1.0)
            } else {
                0.0
            };
            report.attribution = Some(Attribution {
                attributed_seconds: attributed,
                fraction,
            });
            let flops = data
                .counters
                .iter()
                .find(|&&(name, _)| name == "fft_flops")
                .map_or(0, |&(_, v)| v);
            let estimated_gflop = flops as f64 * 1e-9;
            let gflops = if wall_seconds > 0.0 {
                estimated_gflop / wall_seconds
            } else {
                0.0
            };
            let percent_of_peak = machine
                .as_ref()
                .filter(|m| m.peak_gflops > 0.0)
                .map(|m| 100.0 * gflops / m.peak_gflops);
            report.flops = Some(FlopReport {
                estimated_gflop,
                gflops,
                percent_of_peak,
            });
        }
        report.machine = machine;
        report
    }

    /// Renders the schema-versioned JSON document.
    pub fn to_json(&self) -> Json {
        let machine = self.machine.as_ref().map_or(Json::Null, |m| {
            Json::obj(vec![
                ("name", Json::str(&*m.name)),
                ("peak_gflops", Json::num(m.peak_gflops)),
            ])
        });
        let stages = Json::Arr(
            self.stages
                .iter()
                .map(|s| {
                    Json::obj(vec![
                        ("name", Json::str(&*s.name)),
                        ("calls", Json::num(s.calls as f64)),
                        ("seconds", Json::num(s.seconds)),
                    ])
                })
                .collect(),
        );
        let steps = Json::Arr(
            self.steps
                .iter()
                .map(|s| {
                    let per_stage = Json::Obj(
                        s.stage_seconds
                            .iter()
                            .map(|(name, sec)| (name.clone(), Json::num(*sec)))
                            .collect(),
                    );
                    Json::obj(vec![
                        ("iteration", Json::num(s.iteration as f64)),
                        ("dv_integral", Json::num(s.dv_integral)),
                        ("worst_residual", Json::num(s.worst_residual)),
                        ("stages", per_stage),
                    ])
                })
                .collect(),
        );
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(name, value)| (name.clone(), Json::num(*value as f64)))
                .collect(),
        );
        let spans = Json::Arr(
            self.spans
                .iter()
                .map(|s| {
                    Json::obj(vec![
                        ("path", Json::str(&*s.path)),
                        ("count", Json::num(s.count as f64)),
                        ("total_seconds", Json::num(s.total_seconds)),
                        ("self_seconds", Json::num(s.self_seconds)),
                    ])
                })
                .collect(),
        );
        let fragments = Json::Arr(
            self.fragments
                .iter()
                .map(|f| {
                    Json::obj(vec![
                        ("fragment", Json::num(f.index as f64)),
                        ("calls", Json::num(f.calls as f64)),
                        ("seconds", Json::num(f.seconds)),
                    ])
                })
                .collect(),
        );
        let attribution = self.attribution.as_ref().map_or(Json::Null, |a| {
            Json::obj(vec![
                ("attributed_seconds", Json::num(a.attributed_seconds)),
                ("fraction", Json::num(a.fraction)),
            ])
        });
        let flops = self.flops.as_ref().map_or(Json::Null, |f| {
            Json::obj(vec![
                ("estimated_gflop", Json::num(f.estimated_gflop)),
                ("gflops", Json::num(f.gflops)),
                (
                    "percent_of_peak",
                    f.percent_of_peak.map_or(Json::Null, Json::num),
                ),
            ])
        });
        let ranks = Json::Arr(self.ranks.iter().map(rank_section_json).collect());
        Json::obj(vec![
            ("schema", Json::str(SCHEMA_NAME)),
            ("schema_version", Json::num(SCHEMA_VERSION as f64)),
            ("command", Json::str(&*self.command)),
            ("obs_enabled", Json::Bool(self.obs_enabled)),
            ("wall_seconds", Json::num(self.wall_seconds)),
            ("converged", self.converged.map_or(Json::Null, Json::Bool)),
            ("machine", machine),
            ("stages", stages),
            ("steps", steps),
            ("counters", counters),
            ("spans", spans),
            ("fragments", fragments),
            ("attribution", attribution),
            ("flops", flops),
            ("ranks", ranks),
            (
                "telemetry_incomplete",
                Json::Bool(self.telemetry_incomplete),
            ),
            ("extra", Json::Obj(self.extra.to_vec())),
        ])
    }

    /// Writes the JSON document to `path` (truncating).
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json().render().as_bytes())
    }

    /// Paper-style per-stage summary table (Fig. 2 layout: one row per
    /// stage with its share of the wall clock), followed by flop-rate
    /// and attribution lines when available.
    pub fn summary_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "run report: {}", self.command);
        let _ = writeln!(
            out,
            "{:<12} {:>7} {:>12} {:>8}",
            "stage", "calls", "seconds", "% wall"
        );
        for stage in &self.stages {
            let pct = if self.wall_seconds > 0.0 {
                100.0 * stage.seconds / self.wall_seconds
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<12} {:>7} {:>12.4} {:>8.1}",
                stage.name, stage.calls, stage.seconds, pct
            );
        }
        let _ = writeln!(
            out,
            "{:<12} {:>7} {:>12.4} {:>8.1}",
            "wall", "", self.wall_seconds, 100.0
        );
        if let Some(flops) = &self.flops {
            match (flops.percent_of_peak, &self.machine) {
                (Some(pct), Some(machine)) => {
                    let _ = writeln!(
                        out,
                        "flops: {:.3} Gflop estimated, {:.3} Gflop/s sustained ({:.1}% of {} peak)",
                        flops.estimated_gflop, flops.gflops, pct, machine.name
                    );
                }
                _ => {
                    let _ = writeln!(
                        out,
                        "flops: {:.3} Gflop estimated, {:.3} Gflop/s sustained",
                        flops.estimated_gflop, flops.gflops
                    );
                }
            }
        }
        if let Some(attr) = &self.attribution {
            let _ = writeln!(
                out,
                "span attribution: {:.1}% of wall under named spans",
                100.0 * attr.fraction
            );
        }
        out
    }
}

fn span_row_json(s: &SpanRow) -> Json {
    Json::obj(vec![
        ("path", Json::str(&*s.path)),
        ("count", Json::num(s.count as f64)),
        ("total_seconds", Json::num(s.total_seconds)),
        ("self_seconds", Json::num(s.self_seconds)),
    ])
}

fn bucket_json(buckets: &[u64]) -> Json {
    // Trailing zero buckets carry no information; trim them.
    let last = buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
    Json::Arr(
        buckets[..last]
            .iter()
            .map(|&b| Json::num(b as f64))
            .collect(),
    )
}

fn rank_section_json(s: &RankSection) -> Json {
    let (status, error_kind) = match &s.status {
        RankStatus::Up => ("up", Json::Null),
        RankStatus::Down { kind } => ("down", Json::str(&**kind)),
        RankStatus::Missing => ("missing", Json::Null),
    };
    let counters = Json::Obj(
        s.counters
            .iter()
            .map(|(name, value)| (name.clone(), Json::num(*value as f64)))
            .collect(),
    );
    let spans = Json::Arr(s.spans.iter().map(span_row_json).collect());
    let petot = Json::Arr(
        s.petot_iterations
            .iter()
            .map(|&(it, sec)| {
                Json::obj(vec![
                    ("iteration", Json::num(it as f64)),
                    ("seconds", Json::num(sec)),
                ])
            })
            .collect(),
    );
    let comm = Json::Arr(
        s.comm
            .iter()
            .map(|row| {
                Json::obj(vec![
                    ("op", Json::str(&*row.op)),
                    ("kind", Json::str(&*row.kind)),
                    ("tag_class", Json::str(&*row.tag_class)),
                    ("frames", Json::num(row.frames as f64)),
                    ("bytes", Json::num(row.bytes as f64)),
                    ("latency_ns", Json::num(row.latency_ns as f64)),
                    ("size_log2", bucket_json(&row.size_buckets)),
                    ("latency_log2", bucket_json(&row.latency_buckets)),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("rank", Json::num(s.rank as f64)),
        ("status", Json::str(status)),
        ("error_kind", error_kind),
        ("counters", counters),
        ("spans", spans),
        ("petot_iterations", petot),
        ("comm_wait_seconds", Json::num(s.comm_wait_seconds)),
        ("compute_seconds", Json::num(s.compute_seconds)),
        ("comm", comm),
    ])
}

/// Aggregates raw spans into per-path rows (hierarchy reconstructed per
/// thread from start times and recorded depths) and per-fragment rows
/// (spans whose label equals `fragment_label`, keyed by index).
pub fn aggregate_spans(
    spans: &[FinishedSpan],
    fragment_label: &str,
) -> (Vec<SpanRow>, Vec<FragmentRow>) {
    // Sort within each thread by (start, depth): ancestors precede
    // descendants, so a label stack indexed by depth yields the path.
    let mut order: Vec<&FinishedSpan> = spans.iter().collect();
    order.sort_by_key(|a| (a.tid, a.start_ns, a.depth));

    let mut rows: Vec<SpanRow> = Vec::new();
    let mut child_seconds: Vec<f64> = Vec::new();
    let mut index_of_path: std::collections::HashMap<String, usize> =
        std::collections::HashMap::new();
    let mut stack: Vec<(&'static str, usize)> = Vec::new(); // (label, row index)
    let mut last_tid = None;
    for span in &order {
        if last_tid != Some(span.tid) {
            stack.clear();
            last_tid = Some(span.tid);
        }
        stack.truncate(span.depth as usize);
        let mut path = String::new();
        for (label, _) in &stack {
            path.push_str(label);
            path.push('/');
        }
        path.push_str(span.label);
        let row = match index_of_path.get(&path) {
            Some(&i) => i,
            None => {
                index_of_path.insert(path.clone(), rows.len());
                rows.push(SpanRow {
                    path,
                    count: 0,
                    total_seconds: 0.0,
                    self_seconds: 0.0,
                });
                child_seconds.push(0.0);
                rows.len() - 1
            }
        };
        rows[row].count += 1;
        rows[row].total_seconds += span.seconds();
        if let Some(&(_, parent)) = stack.last() {
            child_seconds[parent] += span.seconds();
        }
        stack.push((span.label, row));
    }
    for (row, child) in rows.iter_mut().zip(&child_seconds) {
        row.self_seconds = (row.total_seconds - child).max(0.0);
    }
    rows.sort_by(|a, b| b.total_seconds.total_cmp(&a.total_seconds));

    let mut fragments: Vec<FragmentRow> = Vec::new();
    for span in spans {
        if span.label != fragment_label || span.index == NO_INDEX {
            continue;
        }
        match fragments.iter_mut().find(|f| f.index == span.index) {
            Some(f) => {
                f.calls += 1;
                f.seconds += span.seconds();
            }
            None => fragments.push(FragmentRow {
                index: span.index,
                calls: 1,
                seconds: span.seconds(),
            }),
        }
    }
    fragments.sort_by_key(|f| f.index);
    (rows, fragments)
}

/// Parses and schema-validates a rendered report document, returning
/// the parsed JSON on success. This is what the `obs-report` CI step
/// runs against freshly emitted `BENCH_*.json` files.
pub fn validate_report_str(text: &str) -> Result<Json, String> {
    let doc = Json::parse(text)?;
    validate_report(&doc)?;
    Ok(doc)
}

fn field<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn expect_num(value: &Json, what: &str) -> Result<f64, String> {
    value
        .as_f64()
        .ok_or_else(|| format!("{what} must be a number"))
}

fn expect_str<'a>(value: &'a Json, what: &str) -> Result<&'a str, String> {
    value
        .as_str()
        .ok_or_else(|| format!("{what} must be a string"))
}

fn expect_arr<'a>(value: &'a Json, what: &str) -> Result<&'a [Json], String> {
    value
        .as_array()
        .ok_or_else(|| format!("{what} must be an array"))
}

/// Schema-validates a parsed report document.
pub fn validate_report(doc: &Json) -> Result<(), String> {
    let schema = expect_str(field(doc, "schema")?, "schema")?;
    if schema != SCHEMA_NAME {
        return Err(format!("schema is {schema:?}, expected {SCHEMA_NAME:?}"));
    }
    let version = expect_num(field(doc, "schema_version")?, "schema_version")?;
    if version < 1.0 || version.fract() != 0.0 {
        return Err(format!("bad schema_version {version}"));
    }
    expect_str(field(doc, "command")?, "command")?;
    field(doc, "obs_enabled")?
        .as_bool()
        .ok_or("obs_enabled must be a bool")?;
    let wall = expect_num(field(doc, "wall_seconds")?, "wall_seconds")?;
    if wall.is_nan() || wall < 0.0 {
        return Err(format!("wall_seconds {wall} out of range"));
    }
    match field(doc, "converged")? {
        Json::Null | Json::Bool(_) => {}
        _ => return Err("converged must be bool or null".to_string()),
    }
    match field(doc, "machine")? {
        Json::Null => {}
        m => {
            expect_str(field(m, "name")?, "machine.name")?;
            expect_num(field(m, "peak_gflops")?, "machine.peak_gflops")?;
        }
    }
    for stage in expect_arr(field(doc, "stages")?, "stages")? {
        expect_str(field(stage, "name")?, "stages[].name")?;
        expect_num(field(stage, "calls")?, "stages[].calls")?;
        expect_num(field(stage, "seconds")?, "stages[].seconds")?;
    }
    for step in expect_arr(field(doc, "steps")?, "steps")? {
        expect_num(field(step, "iteration")?, "steps[].iteration")?;
        field(step, "dv_integral")?;
        field(step, "worst_residual")?;
        let stages = field(step, "stages")?
            .as_object()
            .ok_or("steps[].stages must be an object")?;
        for (name, value) in stages {
            expect_num(value, name)?;
        }
    }
    let counters = field(doc, "counters")?
        .as_object()
        .ok_or("counters must be an object")?;
    for (name, value) in counters {
        expect_num(value, name)?;
    }
    for span in expect_arr(field(doc, "spans")?, "spans")? {
        expect_str(field(span, "path")?, "spans[].path")?;
        expect_num(field(span, "count")?, "spans[].count")?;
        expect_num(field(span, "total_seconds")?, "spans[].total_seconds")?;
        expect_num(field(span, "self_seconds")?, "spans[].self_seconds")?;
    }
    for frag in expect_arr(field(doc, "fragments")?, "fragments")? {
        expect_num(field(frag, "fragment")?, "fragments[].fragment")?;
        expect_num(field(frag, "calls")?, "fragments[].calls")?;
        expect_num(field(frag, "seconds")?, "fragments[].seconds")?;
    }
    match field(doc, "attribution")? {
        Json::Null => {}
        a => {
            expect_num(
                field(a, "attributed_seconds")?,
                "attribution.attributed_seconds",
            )?;
            let fraction = expect_num(field(a, "fraction")?, "attribution.fraction")?;
            if !(0.0..=1.0).contains(&fraction) {
                return Err(format!("attribution.fraction {fraction} out of [0, 1]"));
            }
        }
    }
    match field(doc, "flops")? {
        Json::Null => {}
        f => {
            expect_num(field(f, "estimated_gflop")?, "flops.estimated_gflop")?;
            expect_num(field(f, "gflops")?, "flops.gflops")?;
            match field(f, "percent_of_peak")? {
                Json::Null | Json::Num(_) => {}
                _ => return Err("flops.percent_of_peak must be number or null".to_string()),
            }
        }
    }
    // The rank-aware sections arrived in schema v2; v1 (rank-less)
    // documents remain valid without them.
    if version >= 2.0 {
        for rank in expect_arr(field(doc, "ranks")?, "ranks")? {
            expect_num(field(rank, "rank")?, "ranks[].rank")?;
            let status = expect_str(field(rank, "status")?, "ranks[].status")?;
            if !matches!(status, "up" | "down" | "missing") {
                return Err(format!("ranks[].status {status:?} unknown"));
            }
            match field(rank, "error_kind")? {
                Json::Null if status != "down" => {}
                Json::Str(_) if status == "down" => {}
                _ => {
                    return Err(
                        "ranks[].error_kind must be a string exactly for down ranks".to_string()
                    )
                }
            }
            let counters = field(rank, "counters")?
                .as_object()
                .ok_or("ranks[].counters must be an object")?;
            for (name, value) in counters {
                expect_num(value, name)?;
            }
            for span in expect_arr(field(rank, "spans")?, "ranks[].spans")? {
                expect_str(field(span, "path")?, "ranks[].spans[].path")?;
                expect_num(field(span, "count")?, "ranks[].spans[].count")?;
                expect_num(
                    field(span, "total_seconds")?,
                    "ranks[].spans[].total_seconds",
                )?;
                expect_num(field(span, "self_seconds")?, "ranks[].spans[].self_seconds")?;
            }
            for step in expect_arr(field(rank, "petot_iterations")?, "ranks[].petot_iterations")? {
                expect_num(field(step, "iteration")?, "petot_iterations[].iteration")?;
                expect_num(field(step, "seconds")?, "petot_iterations[].seconds")?;
            }
            expect_num(
                field(rank, "comm_wait_seconds")?,
                "ranks[].comm_wait_seconds",
            )?;
            expect_num(field(rank, "compute_seconds")?, "ranks[].compute_seconds")?;
            for row in expect_arr(field(rank, "comm")?, "ranks[].comm")? {
                expect_str(field(row, "op")?, "comm[].op")?;
                expect_str(field(row, "kind")?, "comm[].kind")?;
                expect_str(field(row, "tag_class")?, "comm[].tag_class")?;
                expect_num(field(row, "frames")?, "comm[].frames")?;
                expect_num(field(row, "bytes")?, "comm[].bytes")?;
                expect_num(field(row, "latency_ns")?, "comm[].latency_ns")?;
                expect_arr(field(row, "size_log2")?, "comm[].size_log2")?;
                expect_arr(field(row, "latency_log2")?, "comm[].latency_log2")?;
            }
        }
        field(doc, "telemetry_incomplete")?
            .as_bool()
            .ok_or("telemetry_incomplete must be a bool")?;
    }
    field(doc, "extra")?
        .as_object()
        .ok_or("extra must be an object")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        label: &'static str,
        index: u64,
        start_ns: u64,
        end_ns: u64,
        depth: u32,
        tid: u32,
    ) -> FinishedSpan {
        FinishedSpan {
            label,
            index,
            start_ns,
            end_ns,
            depth,
            tid,
        }
    }

    #[test]
    fn aggregation_builds_paths_and_self_times() {
        let spans = vec![
            span("scf_iter", 1, 0, 1000, 0, 0),
            span("petot_f", NO_INDEX, 100, 900, 1, 0),
            span("frag", 0, 120, 400, 0, 1),
            span("frag", 1, 410, 800, 0, 1),
            span("frag", 0, 120, 500, 0, 2),
        ];
        let (rows, frags) = aggregate_spans(&spans, "frag");
        let iter_row = rows
            .iter()
            .find(|r| r.path == "scf_iter")
            .expect("scf_iter");
        assert_eq!(iter_row.count, 1);
        assert!((iter_row.total_seconds - 1000e-9).abs() < 1e-15);
        // 800 ns of the 1000 are inside petot_f → 200 ns self.
        assert!((iter_row.self_seconds - 200e-9).abs() < 1e-15);
        let child = rows
            .iter()
            .find(|r| r.path == "scf_iter/petot_f")
            .expect("nested path");
        assert_eq!(child.count, 1);
        // Worker-thread roots aggregate under their bare label.
        let frag_row = rows.iter().find(|r| r.path == "frag").expect("frag row");
        assert_eq!(frag_row.count, 3);
        assert_eq!(frags.len(), 2);
        assert_eq!((frags[0].index, frags[0].calls), (0, 2));
        assert_eq!((frags[1].index, frags[1].calls), (1, 1));
    }

    #[test]
    fn report_round_trips_through_validation() {
        let mut report = Report::new("unit-test", 2.5);
        report.converged = Some(true);
        report.machine = Some(MachineRef {
            name: "testbox".to_string(),
            peak_gflops: 100.0,
        });
        report.stages.push(StageRow {
            name: "PEtot_F".to_string(),
            calls: 3,
            seconds: 2.0,
        });
        report.steps.push(StepRow {
            iteration: 1,
            dv_integral: 0.5,
            worst_residual: 1e-6,
            stage_seconds: vec![("PEtot_F".to_string(), 0.7)],
        });
        report.counters.push(("fft_flops".to_string(), 12345));
        report.extra.push(("digest".to_string(), Json::str("abc")));
        let text = report.to_json().render();
        let doc = validate_report_str(&text).expect("schema-valid");
        assert_eq!(doc.get("command").and_then(Json::as_str), Some("unit-test"));
        assert_eq!(
            doc.get("extra")
                .and_then(|e| e.get("digest"))
                .and_then(Json::as_str),
            Some("abc")
        );
    }

    #[test]
    fn validation_rejects_wrong_schema_and_bad_fraction() {
        let mut report = Report::new("x", 1.0);
        report.attribution = Some(Attribution {
            attributed_seconds: 1.0,
            fraction: 0.5,
        });
        let good = report.to_json().render();
        assert!(validate_report_str(&good).is_ok());
        let bad = good.replace("ls3df-run-report", "other-schema");
        assert!(validate_report_str(&bad).is_err());
        let bad = good.replace("\"fraction\": 0.5", "\"fraction\": 1.5");
        assert!(validate_report_str(&bad).is_err());
    }

    #[test]
    fn v1_rankless_documents_are_still_accepted() {
        // A v2 writer output with the rank sections stripped and the
        // version set back to 1 — the shape every committed pre-v2
        // BENCH file has.
        let report = Report::new("legacy", 1.0);
        let text = report
            .to_json()
            .render()
            .replace("\"schema_version\": 2", "\"schema_version\": 1")
            .replace("\"ranks\": [],\n", "")
            .replace("\"telemetry_incomplete\": false,\n", "");
        assert!(
            !text.contains("ranks") && !text.contains("telemetry_incomplete"),
            "test must exercise a genuinely rank-less document"
        );
        validate_report_str(&text).expect("v1 documents stay valid");
        // The same rank-less shape at version 2 must be rejected.
        let v2 = text.replace("\"schema_version\": 1", "\"schema_version\": 2");
        assert!(validate_report_str(&v2).is_err());
    }

    #[test]
    fn v2_validation_checks_rank_sections() {
        let mut report = Report::new("ranked", 1.0);
        report.ranks.push(RankSection {
            rank: 0,
            status: RankStatus::Up,
            counters: vec![("fragment_solves".to_string(), 4)],
            spans: vec![SpanRow {
                path: "scf_iter/petot_f".to_string(),
                count: 2,
                total_seconds: 0.5,
                self_seconds: 0.5,
            }],
            petot_iterations: vec![(1, 0.25), (2, 0.25)],
            comm_wait_seconds: 0.01,
            compute_seconds: 0.5,
            comm: vec![crate::telemetry::CommRow {
                op: "recv".to_string(),
                kind: "data".to_string(),
                tag_class: "user".to_string(),
                frames: 2,
                bytes: 128,
                latency_ns: 900,
                size_buckets: vec![0, 0, 0, 2],
                latency_buckets: vec![2],
            }],
        });
        report.ranks.push(RankSection {
            rank: 1,
            status: RankStatus::Down {
                kind: "rank_down".to_string(),
            },
            counters: Vec::new(),
            spans: Vec::new(),
            petot_iterations: Vec::new(),
            comm_wait_seconds: 0.0,
            compute_seconds: 0.0,
            comm: Vec::new(),
        });
        report.telemetry_incomplete = true;
        let text = report.to_json().render();
        let doc = validate_report_str(&text).expect("ranked report valid");
        let ranks = doc.get("ranks").and_then(Json::as_array).expect("ranks");
        assert_eq!(ranks.len(), 2);
        assert_eq!(ranks[1].get("status").and_then(Json::as_str), Some("down"));
        assert_eq!(
            ranks[1].get("error_kind").and_then(Json::as_str),
            Some("rank_down")
        );
        // A down rank without a kind string is a schema error.
        let bad = text.replace("\"error_kind\": \"rank_down\"", "\"error_kind\": null");
        assert!(validate_report_str(&bad).is_err());
        // An unknown status is a schema error.
        let bad = text.replace("\"status\": \"down\"", "\"status\": \"gone\"");
        assert!(validate_report_str(&bad).is_err());
    }

    #[test]
    fn from_run_derives_flops_and_attribution_when_enabled() {
        let data = RunData {
            spans: vec![span("scf_iter", 1, 0, 900_000_000, 0, 0)],
            threads: vec![(0, "main".to_string())],
            counters: vec![("fft_flops", 2_000_000_000)],
        };
        let machine = MachineRef {
            name: "testbox".to_string(),
            peak_gflops: 10.0,
        };
        let report = Report::from_run("t", 1.0, &data, Some(machine), "frag", "scf_iter");
        assert_eq!(report.obs_enabled, crate::ENABLED);
        if crate::ENABLED {
            let flops = report.flops.as_ref().expect("flops");
            assert!((flops.gflops - 2.0).abs() < 1e-12);
            assert!((flops.percent_of_peak.unwrap_or(0.0) - 20.0).abs() < 1e-9);
            let attr = report.attribution.as_ref().expect("attribution");
            assert!((attr.fraction - 0.9).abs() < 1e-9);
        } else {
            assert!(report.flops.is_none() && report.attribution.is_none());
        }
        let table = report.summary_table();
        assert!(table.contains("stage"));
    }
}
