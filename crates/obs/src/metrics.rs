//! Metrics registry: relaxed atomic counters for the hot paths.
//!
//! Every counter is one slot of a static `AtomicU64` array indexed by
//! [`Counter`]; an increment is a single `fetch_add(Relaxed)` — no
//! allocation, no lock, safe inside the zero-allocation CG/GENPOT hot
//! paths. With the `enabled` feature off, [`counter_add`] is an empty
//! `#[inline(always)]` stub and every read returns zero.
//!
//! The one registry entry that is *not* an internal counter is the
//! allocation total: the facade's `alloc-count` global allocator can
//! hand its counter in via [`set_alloc_probe`], after which
//! [`snapshot`] reports `"allocations"` alongside the rest. The probe
//! works regardless of the `enabled` feature (the allocator counts on
//! its own; obs just reads it).

use std::sync::OnceLock;

/// The registered counters. Adding a variant: extend [`Counter::ALL`]
/// and [`Counter::name`]; storage sizes itself automatically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// 1-D line transforms through a trivial (n = 1) plan.
    FftLinesTrivial,
    /// 1-D line transforms through a radix-2 plan.
    FftLinesRadix2,
    /// 1-D line transforms through a Bluestein plan.
    FftLinesBluestein,
    /// 1-D line transforms through a radix-4 plan.
    FftLinesRadix4,
    /// 1-D real (r2c/c2r) line transforms through a packed plan.
    FftLinesReal,
    /// Whole 3-D transforms (forward or inverse).
    Fft3Transforms,
    /// Estimated floating-point operations spent in FFT kernels.
    FftFlops,
    /// Bytes moved through the strided-FFT gather/scatter staging.
    FftGatherScatterBytes,
    /// Band-resolved CG iterations (all-band steps count once per band).
    CgBandIterations,
    /// GENPOT Poisson solves through the cached Hartree plan.
    HartreeSolves,
    /// Potential-mixing applications (linear/Kerker/Pulay).
    MixerApplies,
    /// Retry-ladder rungs run after fragment solve failures.
    RetryRungs,
    /// Fragments quarantined after ladder exhaustion.
    Quarantines,
    /// Supervised fragment solves (one per fragment per PEtot_F pass).
    FragmentSolves,
    /// Bytes written to communicator transports (frames + length prefixes).
    CommBytesSent,
    /// Bytes read from communicator transports (frames + length prefixes).
    CommBytesReceived,
    /// Collective allreduce operations entered on this rank.
    CommAllreduceCalls,
}

impl Counter {
    /// Every counter, in reporting order.
    pub const ALL: [Counter; 17] = [
        Counter::FftLinesTrivial,
        Counter::FftLinesRadix2,
        Counter::FftLinesBluestein,
        Counter::FftLinesRadix4,
        Counter::FftLinesReal,
        Counter::Fft3Transforms,
        Counter::FftFlops,
        Counter::FftGatherScatterBytes,
        Counter::CgBandIterations,
        Counter::HartreeSolves,
        Counter::MixerApplies,
        Counter::RetryRungs,
        Counter::Quarantines,
        Counter::FragmentSolves,
        Counter::CommBytesSent,
        Counter::CommBytesReceived,
        Counter::CommAllreduceCalls,
    ];

    /// Stable snake_case identifier (JSON report key).
    pub fn name(self) -> &'static str {
        match self {
            Counter::FftLinesTrivial => "fft_lines_trivial",
            Counter::FftLinesRadix2 => "fft_lines_radix2",
            Counter::FftLinesBluestein => "fft_lines_bluestein",
            Counter::FftLinesRadix4 => "fft_lines_radix4",
            Counter::FftLinesReal => "fft_lines_real",
            Counter::Fft3Transforms => "fft3_transforms",
            Counter::FftFlops => "fft_flops",
            Counter::FftGatherScatterBytes => "fft_gather_scatter_bytes",
            Counter::CgBandIterations => "cg_band_iterations",
            Counter::HartreeSolves => "hartree_solves",
            Counter::MixerApplies => "mixer_applies",
            Counter::RetryRungs => "retry_rungs",
            Counter::Quarantines => "quarantines",
            Counter::FragmentSolves => "fragment_solves",
            Counter::CommBytesSent => "comm_bytes_sent",
            Counter::CommBytesReceived => "comm_bytes_received",
            Counter::CommAllreduceCalls => "comm_allreduce_calls",
        }
    }
}

#[cfg(feature = "enabled")]
mod store {
    use super::Counter;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    static COUNTERS: [AtomicU64; Counter::ALL.len()] = [ZERO; Counter::ALL.len()];

    #[inline(always)]
    pub(super) fn add(counter: Counter, n: u64) {
        // ORDERING: Relaxed — pure event counting; only the per-counter
        // totals matter, never cross-counter or counter-vs-data order,
        // and fetch_add's atomicity alone guarantees no lost increments.
        COUNTERS[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    pub(super) fn get(counter: Counter) -> u64 {
        // ORDERING: Relaxed — snapshots are advisory: harvest runs after
        // the workers quiesce (report generation), so there is no
        // concurrent writer whose ordering could matter.
        COUNTERS[counter as usize].load(Ordering::Relaxed)
    }

    pub(super) fn reset() {
        for c in &COUNTERS {
            // ORDERING: Relaxed — reset happens between runs on one
            // thread; counter stores need atomicity, not ordering.
            c.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod store {
    use super::Counter;

    #[inline(always)]
    pub(super) fn add(_counter: Counter, _n: u64) {}

    #[inline(always)]
    pub(super) fn get(_counter: Counter) -> u64 {
        0
    }

    #[inline(always)]
    pub(super) fn reset() {}
}

/// Adds `n` to a counter. Relaxed atomic; no-op when collection is off.
#[inline(always)]
pub fn counter_add(counter: Counter, n: u64) {
    store::add(counter, n);
}

/// Current value of a counter (always 0 when collection is off).
pub fn counter_value(counter: Counter) -> u64 {
    store::get(counter)
}

/// Zeroes every counter.
pub fn reset() {
    store::reset();
}

static ALLOC_PROBE: OnceLock<fn() -> u64> = OnceLock::new();

/// Registers the process allocation counter (the facade's `alloc-count`
/// feature calls this with its global-allocator total). First caller
/// wins; later calls are ignored.
pub fn set_alloc_probe(probe: fn() -> u64) {
    let _ = ALLOC_PROBE.set(probe);
}

/// The installed allocation probe's current reading, if any.
pub fn alloc_total() -> Option<u64> {
    ALLOC_PROBE.get().map(|probe| probe())
}

/// `(name, value)` for every *nonzero* counter, in [`Counter::ALL`]
/// order, with `"allocations"` appended when an alloc probe is
/// installed.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    let mut out: Vec<(&'static str, u64)> = Counter::ALL
        .iter()
        .map(|&c| (c.name(), counter_value(c)))
        .filter(|&(_, v)| v != 0)
        .collect();
    if let Some(total) = alloc_total() {
        out.push(("allocations", total));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_snake_case() {
        let names: std::collections::HashSet<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), Counter::ALL.len());
        for name in names {
            assert!(name
                .chars()
                .all(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == '_'));
        }
    }

    #[test]
    fn names_are_a_stable_golden_list() {
        // Report consumers (merged multi-rank reports, EXPERIMENTS.md
        // tooling) key on these exact strings. Renaming or reordering a
        // counter is a report-schema change: update the golden list
        // here AND document the delta in EXPERIMENTS.md.
        const GOLDEN: [&str; 17] = [
            "fft_lines_trivial",
            "fft_lines_radix2",
            "fft_lines_bluestein",
            "fft_lines_radix4",
            "fft_lines_real",
            "fft3_transforms",
            "fft_flops",
            "fft_gather_scatter_bytes",
            "cg_band_iterations",
            "hartree_solves",
            "mixer_applies",
            "retry_rungs",
            "quarantines",
            "fragment_solves",
            "comm_bytes_sent",
            "comm_bytes_received",
            "comm_allreduce_calls",
        ];
        let names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names, GOLDEN);
    }

    #[test]
    fn add_is_observable_exactly_when_enabled() {
        let before = counter_value(Counter::MixerApplies);
        counter_add(Counter::MixerApplies, 5);
        let after = counter_value(Counter::MixerApplies);
        if cfg!(feature = "enabled") {
            assert_eq!(after - before, 5);
        } else {
            assert_eq!(after, 0);
        }
    }

    #[test]
    fn alloc_probe_feeds_snapshot() {
        fn probe() -> u64 {
            41
        }
        set_alloc_probe(probe);
        assert_eq!(alloc_total(), Some(41));
        let snap = snapshot();
        assert!(snap.iter().any(|&(n, v)| n == "allocations" && v == 41));
    }
}
