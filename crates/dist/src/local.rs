//! `LocalProcs`: worker processes over Unix-domain sockets.
//!
//! # Topology
//!
//! Rank 0 (the *launcher*) binds a Unix-domain socket in the temp
//! directory, re-execs its own binary `size - 1` times with
//! [`ENV_RANK`](crate::ENV_RANK)/[`ENV_SIZE`](crate::ENV_SIZE)/
//! [`ENV_SOCKET`](crate::ENV_SOCKET) set, and accepts one connection per
//! worker (each announces its rank with a `HELLO` frame). The transport
//! is hub-and-spoke: every frame travels through rank 0. Worker→worker
//! traffic is relayed verbatim by the hub's per-connection reader
//! threads — the relayed bytes are the original CRC-checked frame, so
//! corruption anywhere on the path is still caught at the destination.
//!
//! The SPMD model matches `mpirun` re-exec semantics: the worker runs
//! the *same* program, and its own `communicator()` call notices
//! [`ENV_RANK`](crate::ENV_RANK) and connects instead of spawning.
//! Worker stdout is routed to null so rank-0 output (digest lines,
//! bench JSON) stays unpolluted; stderr is inherited for diagnostics.
//!
//! # Failure semantics
//!
//! Every blocking receive is bounded by the configured timeout, and a
//! connection EOF marks the peer rank *down*; both surface as typed
//! [`CommError`]s naming the rank instead of hanging the run. A receive
//! that times out mid-frame leaves the stream desynchronized — that is
//! acceptable because every `CommError` is terminal for the SCF run
//! (the `MPI_ERRORS_ARE_FATAL` analogue).

use crate::telemetry::{record_frame, DIR_RECV, DIR_SEND};
use crate::wire::{self, KIND_BARRIER, KIND_BCAST, KIND_DATA, KIND_HELLO, KIND_REDUCE};
use crate::{fixed_order_tree_sum, lock, CommError, Communicator};
use ls3df_obs::clock::epoch_nanos;
use ls3df_obs::{counter_add, span, Counter};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::ErrorKind;
use std::os::unix::net::{UnixListener, UnixStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
// obs-audit: deadline/timeout bookkeeping only — comm *measurement*
// goes through ls3df-obs spans and the telemetry histograms.
use std::time::{Duration, Instant};

/// Sequence-counter slots for the three collectives.
const SEQ_BARRIER: usize = 0;
const SEQ_BCAST: usize = 1;
const SEQ_REDUCE: usize = 2;

/// Messages queued at the hub, keyed by `(src, kind, tag)`.
#[derive(Default)]
struct HubState {
    queues: BTreeMap<(usize, u32, u32), VecDeque<Vec<u8>>>,
    dead: BTreeSet<usize>,
}

struct HubShared {
    state: Mutex<HubState>,
    cv: Condvar,
}

/// Worker-side receive state: the read half of the hub connection plus
/// messages already pulled off the wire for other `(src, kind, tag)`
/// keys than the one currently awaited.
struct WorkerRecv {
    stream: UnixStream,
    pending: BTreeMap<(usize, u32, u32), VecDeque<Vec<u8>>>,
    hub_down: bool,
}

enum Role {
    Hub {
        /// Write halves to each worker; index `r - 1` holds rank `r`.
        /// Shared with the reader threads for worker→worker relays.
        writers: Arc<Vec<Mutex<UnixStream>>>,
        shared: Arc<HubShared>,
    },
    Worker {
        writer: Mutex<UnixStream>,
        reader: Mutex<WorkerRecv>,
    },
}

/// Multi-process communicator over Unix-domain sockets (hub-and-spoke,
/// rank 0 at the hub). Built via [`communicator`](crate::communicator),
/// never directly.
pub struct LocalProcs {
    rank: usize,
    size: usize,
    timeout: Duration,
    /// Per-collective sequence counters used as matching tags, so every
    /// rank's n-th barrier (broadcast, allreduce) pairs with every other
    /// rank's n-th regardless of user-level tag traffic.
    seqs: Mutex<[u32; 3]>,
    role: Role,
}

fn io_err(context: &str, e: &std::io::Error) -> CommError {
    CommError::Io {
        detail: format!("{context}: {e}"),
    }
}

fn mark_dead(shared: &HubShared, rank: usize) {
    lock(&shared.state).dead.insert(rank);
    shared.cv.notify_all();
}

impl LocalProcs {
    fn next_seq(&self, slot: usize) -> u32 {
        let mut seqs = lock(&self.seqs);
        seqs[slot] = seqs[slot].wrapping_add(1);
        seqs[slot]
    }

    fn check_peer(&self, peer: usize, what: &str) -> Result<(), CommError> {
        if peer == self.rank || peer >= self.size {
            return Err(CommError::Protocol {
                detail: format!(
                    "{what} rank {peer} invalid from rank {} of a size-{} world",
                    self.rank, self.size
                ),
            });
        }
        Ok(())
    }

    /// Sends one frame, feeding the transport histograms (payload size
    /// and blocking time of the write) when observability is on.
    fn send_frame(&self, dst: usize, kind: u32, tag: u32, payload: &[u8]) -> Result<(), CommError> {
        let t0 = if ls3df_obs::ENABLED { epoch_nanos() } else { 0 };
        let result = self.send_frame_inner(dst, kind, tag, payload);
        if ls3df_obs::ENABLED && result.is_ok() {
            record_frame(
                DIR_SEND,
                kind,
                tag,
                payload.len() as u64,
                epoch_nanos().saturating_sub(t0),
            );
        }
        result
    }

    fn send_frame_inner(
        &self,
        dst: usize,
        kind: u32,
        tag: u32,
        payload: &[u8],
    ) -> Result<(), CommError> {
        self.check_peer(dst, "send to")?;
        let bytes = wire::encode_frame(self.rank, dst, kind, tag, payload)?;
        match &self.role {
            Role::Hub { writers, shared } => {
                if lock(&shared.state).dead.contains(&dst) {
                    return Err(CommError::RankDown { rank: dst });
                }
                let mut w = lock(&writers[dst - 1]);
                wire::write_frame(&mut *w, &bytes).map_err(|e| {
                    mark_dead(shared, dst);
                    if e.kind() == ErrorKind::BrokenPipe {
                        CommError::RankDown { rank: dst }
                    } else {
                        io_err("hub send", &e)
                    }
                })
            }
            Role::Worker { writer, .. } => {
                let mut w = lock(writer);
                wire::write_frame(&mut *w, &bytes).map_err(|e| {
                    if e.kind() == ErrorKind::BrokenPipe {
                        CommError::RankDown { rank: 0 }
                    } else {
                        io_err("worker send", &e)
                    }
                })
            }
        }
    }

    /// Receives one frame, feeding the transport histograms (payload
    /// size and blocking wait time) when observability is on.
    fn recv_frame(&self, from: usize, kind: u32, tag: u32) -> Result<Vec<u8>, CommError> {
        let t0 = if ls3df_obs::ENABLED { epoch_nanos() } else { 0 };
        let result = self.recv_frame_inner(from, kind, tag);
        if ls3df_obs::ENABLED {
            if let Ok(payload) = &result {
                record_frame(
                    DIR_RECV,
                    kind,
                    tag,
                    payload.len() as u64,
                    epoch_nanos().saturating_sub(t0),
                );
            }
        }
        result
    }

    fn recv_frame_inner(&self, from: usize, kind: u32, tag: u32) -> Result<Vec<u8>, CommError> {
        self.check_peer(from, "recv from")?;
        // obs-audit: bounded-receive deadline, not a measurement.
        let deadline = Instant::now() + self.timeout;
        let key = (from, kind, tag);
        match &self.role {
            Role::Hub { shared, .. } => {
                let mut st = lock(&shared.state);
                loop {
                    if let Some(msg) = st.queues.get_mut(&key).and_then(VecDeque::pop_front) {
                        return Ok(msg);
                    }
                    if st.dead.contains(&from) {
                        return Err(CommError::RankDown { rank: from });
                    }
                    // obs-audit: deadline arithmetic, not a measurement.
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(CommError::Timeout {
                            from,
                            tag,
                            waited_ms: self.timeout.as_millis() as u64,
                        });
                    }
                    st = match shared.cv.wait_timeout(st, deadline - now) {
                        Ok((guard, _)) => guard,
                        Err(poisoned) => poisoned.into_inner().0,
                    };
                }
            }
            Role::Worker { reader, .. } => {
                let mut r = lock(reader);
                loop {
                    if let Some(msg) = r.pending.get_mut(&key).and_then(VecDeque::pop_front) {
                        return Ok(msg);
                    }
                    if r.hub_down {
                        return Err(CommError::RankDown {
                            rank: if from == 0 { 0 } else { from },
                        });
                    }
                    // obs-audit: deadline arithmetic, not a measurement.
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(CommError::Timeout {
                            from,
                            tag,
                            waited_ms: self.timeout.as_millis() as u64,
                        });
                    }
                    r.stream
                        .set_read_timeout(Some(deadline - now))
                        .map_err(|e| io_err("set read timeout", &e))?;
                    match wire::read_frame(&mut r.stream) {
                        Ok(bytes) => {
                            let frame = wire::decode_frame(&bytes)?;
                            if frame.dst != self.rank {
                                // Misrouted frame: drop, the sender's CRC
                                // was valid so this is a relay bug, not
                                // corruption; starving the key times out.
                                continue;
                            }
                            r.pending
                                .entry((frame.src, frame.kind, frame.tag))
                                .or_default()
                                .push_back(frame.payload);
                        }
                        Err(e)
                            if e.kind() == ErrorKind::WouldBlock
                                || e.kind() == ErrorKind::TimedOut =>
                        {
                            return Err(CommError::Timeout {
                                from,
                                tag,
                                waited_ms: self.timeout.as_millis() as u64,
                            });
                        }
                        Err(e) if e.kind() == ErrorKind::UnexpectedEof => {
                            r.hub_down = true;
                        }
                        Err(e) => return Err(io_err("worker recv", &e)),
                    }
                }
            }
        }
    }
}

impl Communicator for LocalProcs {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, to: usize, tag: u32, payload: &[u8]) -> Result<(), CommError> {
        let _span = span!("comm_send");
        self.send_frame(to, KIND_DATA, tag, payload)
    }

    fn recv(&self, from: usize, tag: u32) -> Result<Vec<u8>, CommError> {
        let _span = span!("comm_recv");
        self.recv_frame(from, KIND_DATA, tag)
    }

    fn barrier(&self) -> Result<(), CommError> {
        let _span = span!("comm_barrier");
        let seq = self.next_seq(SEQ_BARRIER);
        if self.rank == 0 {
            // Gather-then-release: no rank passes until all have arrived.
            for r in 1..self.size {
                self.recv_frame(r, KIND_BARRIER, seq)?;
            }
            for r in 1..self.size {
                self.send_frame(r, KIND_BARRIER, seq, &[])?;
            }
        } else {
            self.send_frame(0, KIND_BARRIER, seq, &[])?;
            self.recv_frame(0, KIND_BARRIER, seq)?;
        }
        Ok(())
    }

    fn broadcast(&self, root: usize, payload: Vec<u8>) -> Result<Vec<u8>, CommError> {
        if root >= self.size {
            return Err(CommError::Protocol {
                detail: format!(
                    "broadcast root {root} out of range in a size-{} world",
                    self.size
                ),
            });
        }
        let _span = span!("comm_bcast");
        let seq = self.next_seq(SEQ_BCAST);
        if self.rank == root {
            for r in 0..self.size {
                if r != root {
                    self.send_frame(r, KIND_BCAST, seq, &payload)?;
                }
            }
            Ok(payload)
        } else {
            self.recv_frame(root, KIND_BCAST, seq)
        }
    }

    fn allreduce_sum_f64(&self, values: &mut [f64]) -> Result<(), CommError> {
        let _span = span!("comm_allreduce");
        counter_add(Counter::CommAllreduceCalls, 1);
        let seq = self.next_seq(SEQ_REDUCE);
        if self.rank == 0 {
            // Gather contributions indexed by rank, combine in the fixed
            // rank-order tree, then hand the identical bytes back out.
            let mut contribs = Vec::with_capacity(self.size);
            contribs.push(values.to_vec());
            for r in 1..self.size {
                let bytes = self.recv_frame(r, KIND_REDUCE, seq)?;
                contribs.push(wire::decode_f64s(&bytes, values.len())?);
            }
            let sum = fixed_order_tree_sum(&contribs);
            let out = wire::encode_f64s(&sum);
            for r in 1..self.size {
                self.send_frame(r, KIND_REDUCE, seq, &out)?;
            }
            values.copy_from_slice(&sum);
        } else {
            self.send_frame(0, KIND_REDUCE, seq, &wire::encode_f64s(values))?;
            let bytes = self.recv_frame(0, KIND_REDUCE, seq)?;
            let sum = wire::decode_f64s(&bytes, values.len())?;
            values.copy_from_slice(&sum);
        }
        Ok(())
    }
}

/// Monotonic suffix for socket paths, so two worlds bootstrapped by one
/// process (e.g. sequential tests) never collide.
static SOCKET_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Spawns `groups - 1` workers and returns the hub communicator plus the
/// child handles (for `worker_pids`/`kill_worker`).
pub(crate) fn bootstrap_hub(
    groups: usize,
    timeout: Duration,
) -> Result<(LocalProcs, Vec<(usize, Child)>), CommError> {
    let boot = |detail: String| CommError::Bootstrap { detail };
    let exe = std::env::current_exe().map_err(|e| boot(format!("current_exe: {e}")))?;
    let socket_path = std::env::temp_dir().join(format!(
        "ls3df-dist-{}-{}.sock",
        std::process::id(),
        SOCKET_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    // A stale path from a crashed earlier run with the same pid would
    // fail the bind; clear it.
    let _ = std::fs::remove_file(&socket_path);
    let listener = UnixListener::bind(&socket_path)
        .map_err(|e| boot(format!("bind {}: {e}", socket_path.display())))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| boot(format!("listener nonblocking: {e}")))?;

    // SPMD re-exec: same binary, same CLI args, ranked environment.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut children: Vec<(usize, Child)> = Vec::with_capacity(groups - 1);
    for rank in 1..groups {
        let spawned = Command::new(&exe)
            .args(&args)
            .env(crate::ENV_RANK, rank.to_string())
            .env(crate::ENV_SIZE, groups.to_string())
            .env(crate::ENV_SOCKET, &socket_path)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn();
        match spawned {
            Ok(child) => children.push((rank, child)),
            Err(e) => {
                for (_, mut c) in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                let _ = std::fs::remove_file(&socket_path);
                return Err(boot(format!("spawn worker rank {rank}: {e}")));
            }
        }
    }

    // Accept one connection per worker; each opens with a HELLO frame
    // carrying its rank, so connection order does not matter.
    // obs-audit: bootstrap deadline bookkeeping, not a measurement.
    let deadline = Instant::now() + timeout;
    let mut slots: Vec<Option<UnixStream>> = (1..groups).map(|_| None).collect();
    let mut connected = 0usize;
    let accept_result: Result<(), CommError> = (|| {
        while connected < groups - 1 {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream
                        .set_nonblocking(false)
                        .map_err(|e| boot(format!("stream blocking: {e}")))?;
                    stream
                        .set_read_timeout(Some(
                            deadline
                                // obs-audit: remaining-deadline math.
                                .saturating_duration_since(Instant::now())
                                .max(Duration::from_millis(1)),
                        ))
                        .map_err(|e| boot(format!("hello timeout: {e}")))?;
                    let mut s = &stream;
                    let bytes =
                        wire::read_frame(&mut s).map_err(|e| boot(format!("read hello: {e}")))?;
                    let hello = wire::decode_frame(&bytes)?;
                    if hello.kind != KIND_HELLO || hello.src == 0 || hello.src >= groups {
                        return Err(boot(format!(
                            "bad hello (kind {}, claimed rank {})",
                            hello.kind, hello.src
                        )));
                    }
                    let slot = &mut slots[hello.src - 1];
                    if slot.is_some() {
                        return Err(boot(format!("rank {} connected twice", hello.src)));
                    }
                    *slot = Some(stream);
                    connected += 1;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    // obs-audit: bootstrap deadline check, not a measurement.
                    if Instant::now() >= deadline {
                        return Err(boot(format!(
                            "timed out waiting for workers ({connected}/{} connected)",
                            groups - 1
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(boot(format!("accept: {e}"))),
            }
        }
        Ok(())
    })();
    if let Err(e) = accept_result {
        for (_, c) in children.iter_mut() {
            let _ = c.kill();
            let _ = c.wait();
        }
        let _ = std::fs::remove_file(&socket_path);
        return Err(e);
    }
    // Everyone is connected; the filesystem name is no longer needed.
    let _ = std::fs::remove_file(&socket_path);

    let shared = Arc::new(HubShared {
        state: Mutex::new(HubState::default()),
        cv: Condvar::new(),
    });
    let mut writers = Vec::with_capacity(groups - 1);
    let mut read_halves = Vec::with_capacity(groups - 1);
    for (i, slot) in slots.into_iter().enumerate() {
        let rank = i + 1;
        let stream = slot.ok_or_else(|| boot(format!("rank {rank} never connected")))?;
        stream
            .set_read_timeout(None)
            .map_err(|e| boot(format!("clear read timeout: {e}")))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| boot(format!("clone stream for rank {rank}: {e}")))?;
        writers.push(Mutex::new(stream));
        read_halves.push((rank, read_half));
    }
    let writers = Arc::new(writers);

    // One reader thread per worker. Readers block indefinitely — bounded
    // waiting lives at the recv() condvar, so an idle connection is never
    // mistaken for a dead one.
    for (rank, mut stream) in read_halves {
        let shared = Arc::clone(&shared);
        let writers = Arc::clone(&writers);
        std::thread::Builder::new()
            .name(format!("ls3df-dist-reader-{rank}"))
            .spawn(move || loop {
                let bytes = match wire::read_frame(&mut stream) {
                    Ok(b) => b,
                    Err(_) => {
                        mark_dead(&shared, rank);
                        break;
                    }
                };
                match wire::decode_frame(&bytes) {
                    Ok(frame) if frame.dst == 0 => {
                        lock(&shared.state)
                            .queues
                            .entry((frame.src, frame.kind, frame.tag))
                            .or_default()
                            .push_back(frame.payload);
                        shared.cv.notify_all();
                    }
                    Ok(frame) => {
                        // Worker→worker relay: forward the original
                        // CRC-checked bytes untouched.
                        if frame.dst >= 1 && frame.dst <= writers.len() {
                            let mut w = lock(&writers[frame.dst - 1]);
                            if wire::write_frame(&mut *w, &bytes).is_err() {
                                mark_dead(&shared, frame.dst);
                            }
                        }
                    }
                    Err(_) => {
                        // Corrupt traffic: treat the connection as lost.
                        mark_dead(&shared, rank);
                        break;
                    }
                }
            })
            .map_err(|e| boot(format!("spawn reader thread: {e}")))?;
    }

    let hub = LocalProcs {
        rank: 0,
        size: groups,
        timeout,
        seqs: Mutex::new([0; 3]),
        role: Role::Hub { writers, shared },
    };
    Ok((hub, children))
}

/// Connects back to the launcher using the ranked environment.
pub(crate) fn bootstrap_worker(timeout: Duration) -> Result<LocalProcs, CommError> {
    let boot = |detail: String| CommError::Bootstrap { detail };
    let env_num = |key: &str| -> Result<usize, CommError> {
        std::env::var(key)
            .map_err(|_| boot(format!("{key} not set")))?
            .parse::<usize>()
            .map_err(|e| boot(format!("{key}: {e}")))
    };
    let rank = env_num(crate::ENV_RANK)?;
    let size = env_num(crate::ENV_SIZE)?;
    if rank == 0 || rank >= size {
        return Err(boot(format!(
            "worker rank {rank} out of range for size {size}"
        )));
    }
    let path = std::env::var(crate::ENV_SOCKET)
        .map_err(|_| boot(format!("{} not set", crate::ENV_SOCKET)))?;

    // The launcher binds before spawning, so the first attempt normally
    // succeeds; retry briefly to absorb filesystem races.
    // obs-audit: connect-retry deadline bookkeeping, not a measurement.
    let deadline = Instant::now() + timeout;
    let stream = loop {
        match UnixStream::connect(&path) {
            Ok(s) => break s,
            Err(e) => {
                // obs-audit: deadline check, not a measurement.
                if Instant::now() >= deadline {
                    return Err(boot(format!("connect {path}: {e}")));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    };
    let reader = stream
        .try_clone()
        .map_err(|e| boot(format!("clone worker stream: {e}")))?;
    let worker = LocalProcs {
        rank,
        size,
        timeout,
        seqs: Mutex::new([0; 3]),
        role: Role::Worker {
            writer: Mutex::new(stream),
            reader: Mutex::new(WorkerRecv {
                stream: reader,
                pending: BTreeMap::new(),
                hub_down: false,
            }),
        },
    };
    // Announce our rank so the hub can slot the connection.
    worker
        .send_frame(0, KIND_HELLO, 0, &[])
        .map_err(|e| boot(format!("hello: {e}")))?;
    Ok(worker)
}
