//! Frame codec: length-prefixed, CRC-checked messages over a byte stream.
//!
//! Every message on a [`LocalProcs`](crate::LocalProcs) connection is one
//! *frame*:
//!
//! ```text
//! offset  size  field
//! 0       8     frame length `L` (little-endian, bytes that follow)
//! 8       L     an `ls3df-ckpt` snapshot container with two sections:
//!               `COMMHDR`  — src rank, dst rank, kind, tag (u64,u64,u32,u32)
//!               `COMMBODY` — the opaque payload bytes
//! ```
//!
//! Reusing the [`Snapshot`] container means the wire format inherits the
//! checkpoint layer's versioning (magic + format version) and per-section
//! CRC32 — a flipped bit in a relayed density block is caught at the
//! receiving rank and reported as a typed protocol error, never patched
//! into physics. The `kind` field separates point-to-point data from the
//! collective-protocol messages (barrier/broadcast/reduce/hello) so a
//! barrier can never consume a density message with the same tag.

use crate::CommError;
use ls3df_ckpt::{ByteReader, ByteWriter, SectionId, Snapshot};
use ls3df_obs::{counter_add, Counter};
use std::io::{Error, ErrorKind, Read, Write};

/// Point-to-point user data (`Communicator::send`/`recv`).
pub(crate) const KIND_DATA: u32 = 0;
/// Barrier protocol messages.
pub(crate) const KIND_BARRIER: u32 = 1;
/// Broadcast protocol messages.
pub(crate) const KIND_BCAST: u32 = 2;
/// Allreduce protocol messages.
pub(crate) const KIND_REDUCE: u32 = 3;
/// Connection handshake (worker announces its rank to the hub).
pub(crate) const KIND_HELLO: u32 = 4;

const SEC_HDR: SectionId = SectionId::new("COMMHDR");
const SEC_BODY: SectionId = SectionId::new("COMMBODY");

/// Hard cap on one frame (1 GiB) — guards the reader against allocating
/// off a corrupt length prefix.
const MAX_FRAME_LEN: u64 = 1 << 30;

/// One decoded message.
#[derive(Debug)]
pub(crate) struct Frame {
    /// Originating rank (preserved across hub relays).
    pub(crate) src: usize,
    /// Destination rank.
    pub(crate) dst: usize,
    /// One of the `KIND_*` constants.
    pub(crate) kind: u32,
    /// Caller-chosen matching tag (collectives use a sequence number).
    pub(crate) tag: u32,
    /// Opaque payload.
    pub(crate) payload: Vec<u8>,
}

/// Serializes a frame body (everything after the length prefix).
pub(crate) fn encode_frame(
    src: usize,
    dst: usize,
    kind: u32,
    tag: u32,
    payload: &[u8],
) -> Result<Vec<u8>, CommError> {
    let mut hdr = ByteWriter::with_capacity(24);
    hdr.put_u64(src as u64)
        .put_u64(dst as u64)
        .put_u32(kind)
        .put_u32(tag);
    let mut snap = Snapshot::new();
    snap.push(SEC_HDR, hdr.into_bytes());
    snap.push(SEC_BODY, payload.to_vec());
    snap.encode().map_err(|e| CommError::Protocol {
        detail: format!("frame encode: {e}"),
    })
}

/// Parses and CRC-verifies a frame body.
pub(crate) fn decode_frame(bytes: &[u8]) -> Result<Frame, CommError> {
    let snap = Snapshot::decode(bytes).map_err(|e| CommError::Protocol {
        detail: format!("frame decode: {e}"),
    })?;
    let hdr = snap.require(SEC_HDR).map_err(|e| CommError::Protocol {
        detail: e.to_string(),
    })?;
    let mut r = ByteReader::new(hdr);
    let read_err = |e: ls3df_ckpt::CkptError| CommError::Protocol {
        detail: e.to_string(),
    };
    let src = r.get_u64("frame src rank").map_err(read_err)? as usize;
    let dst = r.get_u64("frame dst rank").map_err(read_err)? as usize;
    let kind = r.get_u32("frame kind").map_err(read_err)?;
    let tag = r.get_u32("frame tag").map_err(read_err)?;
    let payload = snap
        .require(SEC_BODY)
        .map_err(|e| CommError::Protocol {
            detail: e.to_string(),
        })?
        .to_vec();
    Ok(Frame {
        src,
        dst,
        kind,
        tag,
        payload,
    })
}

/// Writes one length-prefixed frame and flushes the stream.
pub(crate) fn write_frame(stream: &mut dyn Write, bytes: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(bytes.len() as u64).to_le_bytes())?;
    stream.write_all(bytes)?;
    stream.flush()?;
    counter_add(Counter::CommBytesSent, 8 + bytes.len() as u64);
    Ok(())
}

/// Reads one length-prefixed frame body.
pub(crate) fn read_frame(stream: &mut dyn Read) -> std::io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 8];
    stream.read_exact(&mut len_buf)?;
    let len = u64::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(Error::new(
            ErrorKind::InvalidData,
            format!("implausible frame length {len}"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    counter_add(Counter::CommBytesReceived, 8 + len);
    Ok(buf)
}

/// Raw little-endian f64 bit patterns (bit-exact round trip; count is
/// implied by the receiver's buffer length).
pub(crate) fn encode_f64s(values: &[f64]) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(values.len() * 8);
    w.put_f64_slice(values);
    w.into_bytes()
}

/// Decodes exactly `n` doubles (typed error on any length mismatch).
pub(crate) fn decode_f64s(bytes: &[u8], n: usize) -> Result<Vec<f64>, CommError> {
    if bytes.len() != n * 8 {
        return Err(CommError::Protocol {
            detail: format!(
                "reduce payload is {} bytes, expected {}",
                bytes.len(),
                n * 8
            ),
        });
    }
    ByteReader::new(bytes)
        .get_f64_vec(n, "reduce payload")
        .map_err(|e| CommError::Protocol {
            detail: e.to_string(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_preserves_every_field() {
        let bytes = encode_frame(3, 0, KIND_DATA, 42, b"density block").unwrap();
        let f = decode_frame(&bytes).unwrap();
        assert_eq!((f.src, f.dst, f.kind, f.tag), (3, 0, KIND_DATA, 42));
        assert_eq!(f.payload, b"density block");
    }

    #[test]
    fn corrupt_frame_is_a_typed_protocol_error() {
        let mut bytes = encode_frame(1, 0, KIND_DATA, 7, &[0xAA; 64]).unwrap();
        // Flip a payload bit: the section CRC must catch it.
        let n = bytes.len();
        bytes[n - 10] ^= 0x01;
        match decode_frame(&bytes) {
            Err(CommError::Protocol { detail }) => {
                assert!(
                    detail.contains("CRC") || detail.contains("checksum"),
                    "{detail}"
                );
            }
            other => panic!("expected Protocol error, got {other:?}"),
        }
    }

    #[test]
    fn stream_roundtrip_through_a_buffer() {
        let body = encode_frame(2, 1, KIND_BCAST, 9, &[1, 2, 3]).unwrap();
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        let mut cursor = wire.as_slice();
        let back = read_frame(&mut cursor).unwrap();
        assert_eq!(back, body);
        assert!(cursor.is_empty());
    }

    #[test]
    fn f64_payloads_are_bit_exact() {
        let xs = [1.0, -0.125, f64::NAN, 3.5e-300];
        let back = decode_f64s(&encode_f64s(&xs), 4).unwrap();
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(decode_f64s(&encode_f64s(&xs), 3).is_err());
    }
}
