//! Transport self-instrumentation: per-(direction, kind, tag-class)
//! frame counts, byte totals, and log2 latency/size histograms.
//!
//! The recording path is called from `send_frame`/`recv_frame` on
//! every message, so it must cost nothing when observability is off
//! and almost nothing when it is on:
//!
//! * storage is a fixed set of `static` atomics (~30 KiB) — no
//!   allocation, no locks, no `Drop`;
//! * every update is a relaxed `fetch_add`;
//! * when `ls3df-obs` is built without the `enabled` feature, the
//!   whole record call is behind `if ls3df_obs::ENABLED` (a `const
//!   false`), so the optimizer removes it entirely — the zero-alloc
//!   and bit-identity gates see exactly the pre-instrumentation code.
//!
//! [`drain_telemetry`] snapshots the nonzero cells as
//! [`CommRow`]s and resets them — the per-rank payload each worker
//! ships to rank 0 after its final iteration.

use crate::wire;
use ls3df_obs::telemetry::CommRow;
use std::sync::atomic::{AtomicU64, Ordering};

/// Direction index of [`record_frame`]: outbound frames.
pub(crate) const DIR_SEND: usize = 0;
/// Direction index of [`record_frame`]: inbound frames.
pub(crate) const DIR_RECV: usize = 1;

const N_DIRS: usize = 2;
const N_KINDS: usize = 5;
const N_CLASSES: usize = 4;
const SLOTS: usize = N_DIRS * N_KINDS * N_CLASSES;
/// log2 buckets cover the full u64 range: bucket `b` counts values in
/// `[2^(b-1), 2^b)`, bucket 0 counts zeros, bucket 47 is open-ended.
const BUCKETS: usize = 48;

const DIR_LABELS: [&str; N_DIRS] = ["send", "recv"];
const KIND_LABELS: [&str; N_KINDS] = ["data", "barrier", "bcast", "reduce", "hello"];
const CLASS_LABELS: [&str; N_CLASSES] = ["user", "psi", "telemetry", "collective"];

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static FRAMES: [AtomicU64; SLOTS] = [ZERO; SLOTS];
static BYTES: [AtomicU64; SLOTS] = [ZERO; SLOTS];
static LATENCY_NS: [AtomicU64; SLOTS] = [ZERO; SLOTS];
static SIZE_BUCKETS: [AtomicU64; SLOTS * BUCKETS] = [ZERO; SLOTS * BUCKETS];
static LATENCY_BUCKETS: [AtomicU64; SLOTS * BUCKETS] = [ZERO; SLOTS * BUCKETS];

fn slot(dir: usize, kind: usize, class: usize) -> usize {
    (dir * N_KINDS + kind) * N_CLASSES + class
}

/// The histogram bucket of `v`: 0 for zero, else `1 + floor(log2 v)`,
/// clamped to the top bucket.
pub(crate) fn log2_bucket(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Tag-class index of a frame. Point-to-point data frames split by the
/// tag's high-bit conventions (bit 31 = psi gather, bit 30 = telemetry
/// shipment — see `ls3df-core`'s `PSI_GATHER_TAG` and
/// [`TELEMETRY_TAG`](crate::TELEMETRY_TAG)); every collective-protocol
/// kind reports as one `collective` class.
fn tag_class(kind: u32, tag: u32) -> usize {
    if kind != wire::KIND_DATA {
        return 3;
    }
    if tag & 0x8000_0000 != 0 {
        1
    } else if tag & crate::TELEMETRY_TAG != 0 {
        2
    } else {
        0
    }
}

/// Records one frame: payload size and the blocking time of the
/// transport call that moved it. No-op (compiled out) when obs is off.
#[inline]
pub(crate) fn record_frame(dir: usize, kind: u32, tag: u32, payload_bytes: u64, latency_ns: u64) {
    if !ls3df_obs::ENABLED {
        return;
    }
    let kind_ix = (kind as usize).min(N_KINDS - 1);
    let s = slot(dir, kind_ix, tag_class(kind, tag));
    // Relaxed ordering throughout: pure event counting, same contract
    // as the ls3df-obs counter store — only per-cell totals matter.
    FRAMES[s].fetch_add(1, Ordering::Relaxed);
    BYTES[s].fetch_add(payload_bytes, Ordering::Relaxed);
    LATENCY_NS[s].fetch_add(latency_ns, Ordering::Relaxed);
    SIZE_BUCKETS[s * BUCKETS + log2_bucket(payload_bytes)].fetch_add(1, Ordering::Relaxed);
    LATENCY_BUCKETS[s * BUCKETS + log2_bucket(latency_ns)].fetch_add(1, Ordering::Relaxed);
}

/// Snapshots every nonzero histogram cell as a [`CommRow`] and resets
/// the storage. Called once per run: by the worker epilogue before
/// shipping its payload, and by the report assembly on rank 0.
pub fn drain_telemetry() -> Vec<CommRow> {
    let mut rows = Vec::new();
    for dir in 0..N_DIRS {
        for kind in 0..N_KINDS {
            for class in 0..N_CLASSES {
                let s = slot(dir, kind, class);
                let frames = FRAMES[s].swap(0, Ordering::Relaxed);
                let bytes = BYTES[s].swap(0, Ordering::Relaxed);
                let latency_ns = LATENCY_NS[s].swap(0, Ordering::Relaxed);
                let mut size_buckets = vec![0u64; BUCKETS];
                let mut latency_buckets = vec![0u64; BUCKETS];
                for b in 0..BUCKETS {
                    size_buckets[b] = SIZE_BUCKETS[s * BUCKETS + b].swap(0, Ordering::Relaxed);
                    latency_buckets[b] =
                        LATENCY_BUCKETS[s * BUCKETS + b].swap(0, Ordering::Relaxed);
                }
                if frames == 0 {
                    continue;
                }
                // Trim the all-zero tails so payloads stay compact.
                let size_len = size_buckets
                    .iter()
                    .rposition(|&b| b != 0)
                    .map_or(0, |i| i + 1);
                size_buckets.truncate(size_len);
                let lat_len = latency_buckets
                    .iter()
                    .rposition(|&b| b != 0)
                    .map_or(0, |i| i + 1);
                latency_buckets.truncate(lat_len);
                rows.push(CommRow {
                    op: DIR_LABELS[dir].to_string(),
                    kind: KIND_LABELS[kind].to_string(),
                    tag_class: CLASS_LABELS[class].to_string(),
                    frames,
                    bytes,
                    latency_ns,
                    size_buckets,
                    latency_buckets,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets_are_monotone_and_clamped() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(1024), 11);
        assert_eq!(log2_bucket(u64::MAX), BUCKETS - 1);
        let mut last = 0;
        for shift in 0..64 {
            let b = log2_bucket(1u64 << shift);
            assert!(b >= last);
            last = b;
        }
    }

    #[test]
    fn data_tags_classify_by_high_bits() {
        assert_eq!(tag_class(wire::KIND_DATA, 3), 0); // user
        assert_eq!(tag_class(wire::KIND_DATA, 0x8000_0005), 1); // psi
        assert_eq!(tag_class(wire::KIND_DATA, crate::TELEMETRY_TAG), 2);
        assert_eq!(tag_class(wire::KIND_BARRIER, 0), 3); // collective
        assert_eq!(tag_class(wire::KIND_REDUCE, 7), 3);
    }

    #[test]
    fn record_and_drain_follow_the_obs_gate() {
        // Use the telemetry tag class: no other test traffic lands in
        // those cells, so this stays race-free under parallel tests.
        record_frame(
            DIR_SEND,
            wire::KIND_DATA,
            crate::TELEMETRY_TAG | 1,
            100,
            5_000,
        );
        record_frame(
            DIR_SEND,
            wire::KIND_DATA,
            crate::TELEMETRY_TAG | 2,
            28,
            1_000,
        );
        record_frame(DIR_RECV, wire::KIND_DATA, crate::TELEMETRY_TAG | 1, 64, 50);
        let rows = drain_telemetry();
        let telem: Vec<&CommRow> = rows.iter().filter(|r| r.tag_class == "telemetry").collect();
        if ls3df_obs::ENABLED {
            assert_eq!(telem.len(), 2);
            let send = telem.iter().find(|r| r.op == "send").expect("send row");
            assert_eq!((send.frames, send.bytes), (2, 128));
            assert_eq!(send.latency_ns, 6_000);
            assert_eq!(send.size_buckets.iter().sum::<u64>(), 2);
            let recv = telem.iter().find(|r| r.op == "recv").expect("recv row");
            assert_eq!((recv.kind.as_str(), recv.frames), ("data", 1));
            // Drained means drained.
            assert!(drain_telemetry().iter().all(|r| r.tag_class != "telemetry"));
        } else {
            assert!(rows.is_empty(), "recording must be a no-op when obs is off");
        }
    }
}
