//! The default backend: a world of one process.

use crate::{CommError, Communicator};
use ls3df_obs::{counter_add, span, Counter};

/// A size-1 world. Collectives are no-ops (a barrier over one rank is
/// trivially satisfied; an allreduce of one contribution is identity),
/// and point-to-point traffic is a protocol error because there is no
/// peer to address.
#[derive(Clone, Copy, Debug, Default)]
pub struct SingleProcess;

impl SingleProcess {
    /// Builds the single-process communicator.
    pub fn new() -> Self {
        SingleProcess
    }
}

impl Communicator for SingleProcess {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn send(&self, to: usize, tag: u32, _payload: &[u8]) -> Result<(), CommError> {
        Err(CommError::Protocol {
            detail: format!("send to rank {to} (tag {tag}) in a single-process world"),
        })
    }

    fn recv(&self, from: usize, tag: u32) -> Result<Vec<u8>, CommError> {
        Err(CommError::Protocol {
            detail: format!("recv from rank {from} (tag {tag}) in a single-process world"),
        })
    }

    fn barrier(&self) -> Result<(), CommError> {
        Ok(())
    }

    fn broadcast(&self, root: usize, payload: Vec<u8>) -> Result<Vec<u8>, CommError> {
        if root != 0 {
            return Err(CommError::Protocol {
                detail: format!("broadcast root {root} out of range in a single-process world"),
            });
        }
        Ok(payload)
    }

    fn allreduce_sum_f64(&self, _values: &mut [f64]) -> Result<(), CommError> {
        // Same span label as the multi-process backend, so reports
        // attribute collectives identically at any group count.
        let _span = span!("comm_allreduce");
        counter_add(Counter::CommAllreduceCalls, 1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collectives_are_identity() {
        let c = SingleProcess::new();
        assert_eq!((c.rank(), c.size()), (0, 1));
        c.barrier().unwrap();
        assert_eq!(c.broadcast(0, vec![1, 2, 3]).unwrap(), vec![1, 2, 3]);
        let mut v = [1.5, -2.0];
        c.allreduce_sum_f64(&mut v).unwrap();
        assert_eq!(v, [1.5, -2.0]);
    }

    #[test]
    fn point_to_point_is_a_protocol_error() {
        let c = SingleProcess::new();
        assert!(matches!(c.send(1, 0, &[]), Err(CommError::Protocol { .. })));
        assert!(matches!(c.recv(1, 0), Err(CommError::Protocol { .. })));
        assert!(matches!(
            c.broadcast(2, Vec::new()),
            Err(CommError::Protocol { .. })
        ));
    }
}
