//! MPI-shaped transport for two-level processor-group execution.
//!
//! The LS3DF paper (§III) runs as a two-level hierarchy: `M` processor
//! groups each solve their own set of fragments independently, and a thin
//! global layer stitches the patched density together and broadcasts the
//! GENPOT potential. This crate provides the communication substrate for
//! that hierarchy as an MPI-shaped [`Communicator`] trait with two
//! backends:
//!
//! * [`SingleProcess`] — today's shared-memory behavior, the default.
//!   Rank 0 of a size-1 world; collectives are no-ops.
//! * [`LocalProcs`] — worker processes spawned by a launcher (rank 0),
//!   exchanging length-prefixed CRC-checked frames over Unix-domain
//!   sockets. See [`local`] module docs for the topology.
//!
//! A real MPI binding can later slot in behind the same trait without
//! touching the SCF driver.
//!
//! # Determinism contract
//!
//! [`Communicator::allreduce_sum_f64`] combines per-rank contributions in
//! a **fixed balanced binary tree over rank indices** (see
//! [`fixed_order_tree_sum`]): the floating-point combine order depends
//! only on the world size, never on message arrival order. This mirrors
//! the repo's fixed-order thread reductions — reproducibility is a
//! correctness property here, not a debugging aid.
//!
//! # Bootstrap
//!
//! [`communicator`] is the single entry point. The process model is SPMD
//! re-exec: the launcher re-runs its own executable with
//! [`ENV_RANK`]/[`ENV_SIZE`]/[`ENV_SOCKET`] set, and the child's own call
//! to `communicator` notices [`ENV_RANK`] and connects as a worker
//! instead of spawning. Errors are *fatal by default* at the SCF driver
//! layer (the MPI `MPI_ERRORS_ARE_FATAL` analogue); callers that want to
//! handle [`CommError`] use the driver's `try_scf` entry points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod local;
mod single;
mod telemetry;
pub(crate) mod wire;

pub use local::LocalProcs;
pub use single::SingleProcess;
pub use telemetry::drain_telemetry;

use ls3df_ckpt::Snapshot;
use std::process::Child;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Env var carrying a worker's rank (set by the launcher; its presence
/// marks the process as a spawned worker).
pub const ENV_RANK: &str = "LS3DF_DIST_RANK";
/// Env var carrying the world size (launcher + workers).
pub const ENV_SIZE: &str = "LS3DF_DIST_SIZE";
/// Env var carrying the Unix-socket path workers connect back to.
pub const ENV_SOCKET: &str = "LS3DF_DIST_SOCKET";
/// Env var bounding every blocking receive, in milliseconds
/// (default [`DEFAULT_TIMEOUT_MS`]). A dead peer therefore surfaces as a
/// typed error instead of a hang.
pub const ENV_TIMEOUT_MS: &str = "LS3DF_DIST_TIMEOUT_MS";
/// Default bounded-receive timeout (two minutes — generous next to any
/// in-repo solve, tiny next to a hung CI job).
pub const DEFAULT_TIMEOUT_MS: u64 = 120_000;

/// Tag bit reserved for post-run telemetry shipment (workers → rank 0).
/// Disjoint from the SCF's plain iteration tags and from the psi-gather
/// bit (bit 31), so a late telemetry frame can never be mistaken for
/// SCF data; the transport's histograms also use it to classify frames.
pub const TELEMETRY_TAG: u32 = 0x4000_0000;

/// Transport-layer failure, always naming the peer rank where one is
/// involved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// A peer process exited or its connection was lost.
    RankDown {
        /// The rank that went away.
        rank: usize,
    },
    /// A bounded receive expired with no matching message.
    Timeout {
        /// The rank we were waiting on.
        from: usize,
        /// The message tag we were waiting for.
        tag: u32,
        /// How long we waited, in milliseconds.
        waited_ms: u64,
    },
    /// Malformed or out-of-contract traffic (bad frame, CRC mismatch,
    /// rank out of range, send-to-self, ...).
    Protocol {
        /// Human-readable description.
        detail: String,
    },
    /// An OS-level transport failure that is not a clean peer loss.
    Io {
        /// Human-readable description.
        detail: String,
    },
    /// The communicator could not be constructed (spawn failure, socket
    /// bind failure, malformed bootstrap environment, ...).
    Bootstrap {
        /// Human-readable description.
        detail: String,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::RankDown { rank } => {
                write!(
                    f,
                    "communicator peer rank {rank} is down (process exited or connection lost)"
                )
            }
            CommError::Timeout {
                from,
                tag,
                waited_ms,
            } => write!(
                f,
                "timed out after {waited_ms} ms waiting for a message from rank {from} (tag {tag})"
            ),
            CommError::Protocol { detail } => write!(f, "communicator protocol error: {detail}"),
            CommError::Io { detail } => write!(f, "communicator transport error: {detail}"),
            CommError::Bootstrap { detail } => write!(f, "communicator bootstrap failed: {detail}"),
        }
    }
}

impl std::error::Error for CommError {}

/// MPI-shaped process-group transport.
///
/// All collective calls must be made by **every** rank in the same order;
/// the backends match them up with internal sequence numbers, so two
/// interleaved collective streams on one communicator are a protocol
/// violation, exactly as in MPI.
pub trait Communicator: Send + Sync {
    /// This process's rank in `0..size()`. Rank 0 is the global layer.
    fn rank(&self) -> usize;

    /// Number of cooperating processes (≥ 1).
    fn size(&self) -> usize;

    /// Sends `payload` to rank `to`. Tags disambiguate concurrent
    /// logical streams; a receive only matches the same `(from, tag)`.
    fn send(&self, to: usize, tag: u32, payload: &[u8]) -> Result<(), CommError>;

    /// Blocks (bounded by the configured timeout) for a message from
    /// rank `from` with tag `tag`.
    fn recv(&self, from: usize, tag: u32) -> Result<Vec<u8>, CommError>;

    /// Releases no rank until every rank has entered.
    fn barrier(&self) -> Result<(), CommError>;

    /// Sends `payload` from `root` to every rank; every rank returns the
    /// root's bytes (the root gets its own payload back untouched).
    fn broadcast(&self, root: usize, payload: Vec<u8>) -> Result<Vec<u8>, CommError>;

    /// Element-wise sum of `values` across all ranks, combined in the
    /// fixed rank-indexed tree order of [`fixed_order_tree_sum`]. Every
    /// rank's buffer holds the identical result afterwards — bit-for-bit,
    /// at any world size with the same contributions.
    fn allreduce_sum_f64(&self, values: &mut [f64]) -> Result<(), CommError>;

    /// Sends a typed section container (the `ls3df-ckpt` [`Snapshot`]
    /// format, so payloads are CRC-checked and versioned on the wire).
    fn send_sections(&self, to: usize, tag: u32, snapshot: &Snapshot) -> Result<(), CommError> {
        let bytes = snapshot.encode().map_err(|e| CommError::Protocol {
            detail: format!("section container encode: {e}"),
        })?;
        self.send(to, tag, &bytes)
    }

    /// Receives and validates a typed section container from `from`.
    fn recv_sections(&self, from: usize, tag: u32) -> Result<Snapshot, CommError> {
        let bytes = self.recv(from, tag)?;
        Snapshot::decode(&bytes).map_err(|e| CommError::Protocol {
            detail: format!("section container decode: {e}"),
        })
    }
}

/// Sums per-rank contributions (`contribs[r]` is rank `r`'s vector) in a
/// balanced pairwise tree over rank indices: `((r0+r1)+(r2+r3))+...`.
///
/// The combine order is a pure function of `contribs.len()`, so any
/// backend — and any future real-MPI binding — reproduces the identical
/// floating-point result for identical contributions. Empty input sums
/// to an empty vector; mismatched lengths are truncated to the shortest
/// (backends validate lengths before calling).
pub fn fixed_order_tree_sum(contribs: &[Vec<f64>]) -> Vec<f64> {
    let mut level: Vec<Vec<f64>> = contribs.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                let mut acc = pair[0].clone();
                for (a, b) in acc.iter_mut().zip(&pair[1]) {
                    *a += *b;
                }
                next.push(acc);
            } else {
                next.push(pair[0].clone());
            }
        }
        level = next;
    }
    level.pop().unwrap_or_default()
}

/// Locks a mutex, recovering the guard if a communicator thread panicked
/// while holding it — the guarded state is a message queue that remains
/// structurally valid, and the failure itself surfaces through the
/// dead-rank machinery rather than a poison panic.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The bounded-receive timeout from [`ENV_TIMEOUT_MS`] (default
/// [`DEFAULT_TIMEOUT_MS`]).
pub fn recv_timeout() -> Duration {
    let ms = std::env::var(ENV_TIMEOUT_MS)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(DEFAULT_TIMEOUT_MS);
    Duration::from_millis(ms.max(1))
}

/// The process-wide communicator, installed by the first
/// [`communicator`] call that builds a multi-process world.
static GLOBAL: OnceLock<Arc<dyn Communicator>> = OnceLock::new();
/// Serializes bootstrap so concurrent builders cannot spawn two worker
/// fleets.
static INIT_LOCK: Mutex<()> = Mutex::new(());
/// Spawned worker processes, kept for [`worker_pids`]/[`kill_worker`]
/// (validation hooks in the spirit of the fault-injection API) and so
/// the launcher outlives its children.
static CHILDREN: OnceLock<Mutex<Vec<(usize, Child)>>> = OnceLock::new();

/// Returns the already-installed multi-process communicator, if any.
pub fn current() -> Option<Arc<dyn Communicator>> {
    GLOBAL.get().cloned()
}

/// Builds (or returns) the communicator for a `groups`-way world.
///
/// Resolution order:
/// 1. a multi-process communicator already installed in this process;
/// 2. [`ENV_RANK`] present → this process is a spawned worker: connect
///    back to the launcher's socket (ignoring `groups`);
/// 3. `groups <= 1` → a fresh [`SingleProcess`] (not cached, so a later
///    build with more groups can still spawn);
/// 4. otherwise → spawn `groups - 1` workers re-execing the current
///    executable and return the hub.
///
/// Multi-process worlds are installed process-wide: every subsequent
/// call returns the same instance regardless of `groups`, matching the
/// once-per-run semantics of `MPI_Init`.
pub fn communicator(groups: usize) -> Result<Arc<dyn Communicator>, CommError> {
    let _init = lock(&INIT_LOCK);
    if let Some(c) = GLOBAL.get() {
        return Ok(Arc::clone(c));
    }
    let timeout = recv_timeout();
    if std::env::var_os(ENV_RANK).is_some() {
        let worker = local::bootstrap_worker(timeout)?;
        let arc: Arc<dyn Communicator> = Arc::new(worker);
        return Ok(Arc::clone(GLOBAL.get_or_init(|| arc)));
    }
    if groups <= 1 {
        return Ok(Arc::new(SingleProcess::new()));
    }
    let (hub, children) = local::bootstrap_hub(groups, timeout)?;
    let _ = CHILDREN.set(Mutex::new(children));
    let arc: Arc<dyn Communicator> = Arc::new(hub);
    Ok(Arc::clone(GLOBAL.get_or_init(|| arc)))
}

/// Ranks and OS pids of the spawned workers (empty unless this process
/// is a [`LocalProcs`] launcher).
pub fn worker_pids() -> Vec<(usize, u32)> {
    match CHILDREN.get() {
        Some(children) => lock(children).iter().map(|(r, c)| (*r, c.id())).collect(),
        None => Vec::new(),
    }
}

/// Kills the worker process holding `rank`, returning whether a worker
/// was found and signalled. A validation hook for robustness tests — the
/// production failure path is a worker dying on its own.
pub fn kill_worker(rank: usize) -> bool {
    let Some(children) = CHILDREN.get() else {
        return false;
    };
    let mut children = lock(children);
    for (r, child) in children.iter_mut() {
        if *r == rank {
            let killed = child.kill().is_ok();
            if killed {
                let _ = child.wait();
            }
            return killed;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_sum_matches_sequential_sum_for_small_worlds() {
        for n in 1..=8usize {
            let contribs: Vec<Vec<f64>> =
                (0..n).map(|r| vec![r as f64 + 0.5, -(r as f64)]).collect();
            let tree = fixed_order_tree_sum(&contribs);
            let mut seq = [0.0; 2];
            for c in &contribs {
                seq[0] += c[0];
                seq[1] += c[1];
            }
            assert!((tree[0] - seq[0]).abs() < 1e-12, "n={n}");
            assert!((tree[1] - seq[1]).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn tree_sum_order_is_rank_indexed_not_arrival_ordered() {
        // Values chosen so floating-point association matters:
        // ((a+b)+(c+d)) differs in the last bits from ((a+c)+(b+d)).
        let a = vec![1.0e16];
        let b = vec![1.0];
        let c = vec![-1.0e16];
        let d = vec![2.0];
        let tree = fixed_order_tree_sum(&[a.clone(), b.clone(), c.clone(), d.clone()]);
        // Hand-evaluate the documented order: ((a+b)+(c+d)).
        let expected = ((a[0] + b[0]) + (c[0] + d[0])).to_bits();
        assert_eq!(tree[0].to_bits(), expected);
        // A different association really does give different bits, so the
        // assertion above is not vacuous.
        let other = ((a[0] + c[0]) + (b[0] + d[0])).to_bits();
        assert_ne!(expected, other);
    }

    #[test]
    fn tree_sum_handles_degenerate_inputs() {
        assert!(fixed_order_tree_sum(&[]).is_empty());
        assert_eq!(fixed_order_tree_sum(&[vec![3.25]]), vec![3.25]);
    }

    #[test]
    fn comm_error_display_names_the_rank() {
        let down = CommError::RankDown { rank: 3 }.to_string();
        assert!(down.contains("rank 3"), "{down}");
        let timeout = CommError::Timeout {
            from: 2,
            tag: 7,
            waited_ms: 5000,
        }
        .to_string();
        assert!(
            timeout.contains("rank 2") && timeout.contains("5000"),
            "{timeout}"
        );
    }

    #[test]
    fn default_timeout_is_two_minutes() {
        // Do not mutate the env here (tests share a process); just check
        // the default constant wiring.
        assert_eq!(DEFAULT_TIMEOUT_MS, 120_000);
    }
}
