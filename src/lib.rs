//! Facade crate for the LS3DF reproduction workspace.
//!
//! The per-layer crates stay importable under their module aliases
//! (`ls3df::core`, `ls3df::pw`, …), but the types a typical driver needs
//! are re-exported at the crate root so one `use ls3df::{…}` line builds
//! and runs a calculation:
//!
//! ```ignore
//! use ls3df::{Ls3df, Ls3dfOptions};
//!
//! let mut calc = Ls3df::builder(&structure)
//!     .fragments([2, 2, 2])
//!     .options(Ls3dfOptions::laptop())
//!     .build()?;
//! let result = calc.scf();
//! ```
// `alloc_count` is the facade's (audited, SAFETY-commented) unsafe site.
#![deny(unsafe_code)]

#[cfg(feature = "alloc-count")]
pub mod alloc_count;

pub use ls3df_atoms as atoms;
pub use ls3df_ckpt as ckpt;
pub use ls3df_core as core;
pub use ls3df_dist as dist;
pub use ls3df_fft as fft;
pub use ls3df_grid as grid;
pub use ls3df_hpc as hpc;
pub use ls3df_math as math;
pub use ls3df_obs as obs;
pub use ls3df_pseudo as pseudo;
pub use ls3df_pw as pw;

pub use ls3df_atoms::Structure;
pub use ls3df_ckpt::{CheckpointConfig, CheckpointPolicy, CkptError, CkptErrorKind};
pub use ls3df_core::{
    fragment_costs, plan_groups, registered_schemes, Fragment, FragmentError, FragmentFault,
    FragmentGrid, FragmentId, FragmentScheme, GroupPlan, InjectedFault, Ls3df, Ls3dfBuilder,
    Ls3dfError, Ls3dfOptions, Ls3dfResult, Ls3dfStep, Overlapping, Passivation, QuarantineRecord,
    RetryAction, ScfObserver, ScfStage, SignAlternating, SilentObserver, StepTimings,
    TraceObserver,
};
pub use ls3df_dist::{CommError, Communicator};
pub use ls3df_pseudo::PseudoTable;
pub use ls3df_pw::Mixer;
