//! Facade crate for the LS3DF reproduction workspace.
pub use ls3df_atoms as atoms;
pub use ls3df_core as core;
pub use ls3df_fft as fft;
pub use ls3df_grid as grid;
pub use ls3df_hpc as hpc;
pub use ls3df_math as math;
pub use ls3df_pseudo as pseudo;
pub use ls3df_pw as pw;
