//! Counting global allocator for the zero-allocation hot-path tests.
//!
//! Compiled only under the `alloc-count` feature. A test binary installs
//! [`CountingAllocator`] as its `#[global_allocator]`, then brackets the
//! code under scrutiny with [`allocation_count`] reads: a delta of zero
//! proves the region performed no heap allocation at all (frees are not
//! counted — a free-only region is still "allocation-free").
//!
//! The counter is a relaxed [`AtomicU64`]; the guard test runs its probes
//! on one thread in one `#[test]` fn, so cross-thread noise only matters
//! if library code itself spawns threads inside the probed region — which
//! is exactly the kind of hidden cost the test exists to catch.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Number of heap allocations (`alloc`, `alloc_zeroed`, or growing
/// `realloc` — every call that can return fresh memory) since process
/// start. Subtract two reads to count allocations in a region.
pub fn allocation_count() -> u64 {
    // ORDERING: Relaxed — probe reads bracket a single-threaded region
    // (module docs); only the delta matters, not ordering against the
    // allocations themselves.
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Folds the allocator total into the `ls3df-obs` metrics registry:
/// after this, [`ls3df_obs::harvest`](ls3df_obs::harvest) snapshots
/// include an `"allocations"` counter and run reports carry it. Safe to
/// call more than once (the first installed probe wins).
pub fn install_metrics_probe() {
    ls3df_obs::set_alloc_probe(allocation_count);
}

/// A [`System`]-backed allocator that counts every allocation request.
///
/// Install with
/// `#[global_allocator] static A: CountingAllocator = CountingAllocator;`.
pub struct CountingAllocator;

#[allow(unsafe_code)]
// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter update has no effect on the memory
// returned.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: pure forwarding to `System::alloc`; the caller upholds
    // the `GlobalAlloc` layout/pointer contract.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // ORDERING: Relaxed — a pure event count on the hottest possible
        // path; atomicity prevents lost increments, and no memory is
        // published through the counter.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds the `GlobalAlloc::alloc` contract.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: pure forwarding to `System::alloc_zeroed`; the caller upholds
    // the `GlobalAlloc` layout/pointer contract.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // ORDERING: Relaxed — same argument as `alloc`.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds the `GlobalAlloc::alloc_zeroed` contract.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: pure forwarding to `System::dealloc`; the caller upholds
    // the `GlobalAlloc` layout/pointer contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller upholds the `GlobalAlloc::dealloc` contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: pure forwarding to `System::realloc`; the caller upholds
    // the `GlobalAlloc` layout/pointer contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // ORDERING: Relaxed — same argument as `alloc`.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds the `GlobalAlloc::realloc` contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exercises the raw `GlobalAlloc` forwarding directly — this is the
    /// allocator leg of the `cargo xtask miri` unsafe-core filter, so the
    /// pointer round-trips below run under the interpreter's full
    /// aliasing/validity checks.
    #[test]
    #[allow(unsafe_code)]
    fn counting_allocator_roundtrips_and_counts() {
        let a = CountingAllocator;
        let layout = Layout::from_size_align(64, 8).expect("valid layout");
        let grown = Layout::from_size_align(128, 8).expect("valid layout");
        let before = allocation_count();
        // Every pointer below came from this allocator and is paired
        // with the layout its block currently has.
        // SAFETY: layouts are valid and non-zero-sized, and the pairing
        // above upholds the GlobalAlloc contract for each call.
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            p.write_bytes(0xab, layout.size());
            let q = a.realloc(p, layout, grown.size());
            assert!(!q.is_null());
            // The old prefix must survive the move.
            assert_eq!(*q, 0xab);
            a.dealloc(q, grown);
            let z = a.alloc_zeroed(layout);
            assert!(!z.is_null());
            assert_eq!(*z, 0);
            a.dealloc(z, layout);
        }
        // alloc + realloc + alloc_zeroed = three counted events (frees
        // are not counted). Other test threads may allocate concurrently,
        // so ≥ not ==.
        assert!(allocation_count() >= before + 3);
    }
}
