//! Counting global allocator for the zero-allocation hot-path tests.
//!
//! Compiled only under the `alloc-count` feature. A test binary installs
//! [`CountingAllocator`] as its `#[global_allocator]`, then brackets the
//! code under scrutiny with [`allocation_count`] reads: a delta of zero
//! proves the region performed no heap allocation at all (frees are not
//! counted — a free-only region is still "allocation-free").
//!
//! The counter is a relaxed [`AtomicU64`]; the guard test runs its probes
//! on one thread in one `#[test]` fn, so cross-thread noise only matters
//! if library code itself spawns threads inside the probed region — which
//! is exactly the kind of hidden cost the test exists to catch.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Number of heap allocations (`alloc`, `alloc_zeroed`, or growing
/// `realloc` — every call that can return fresh memory) since process
/// start. Subtract two reads to count allocations in a region.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Folds the allocator total into the `ls3df-obs` metrics registry:
/// after this, [`ls3df_obs::harvest`](ls3df_obs::harvest) snapshots
/// include an `"allocations"` counter and run reports carry it. Safe to
/// call more than once (the first installed probe wins).
pub fn install_metrics_probe() {
    ls3df_obs::set_alloc_probe(allocation_count);
}

/// A [`System`]-backed allocator that counts every allocation request.
///
/// Install with
/// `#[global_allocator] static A: CountingAllocator = CountingAllocator;`.
pub struct CountingAllocator;

#[allow(unsafe_code)]
// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter update has no effect on the memory
// returned.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: pure forwarding to `System::alloc`; the caller upholds
    // the `GlobalAlloc` layout/pointer contract.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds the `GlobalAlloc::alloc` contract.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: pure forwarding to `System::alloc_zeroed`; the caller upholds
    // the `GlobalAlloc` layout/pointer contract.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds the `GlobalAlloc::alloc_zeroed` contract.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: pure forwarding to `System::dealloc`; the caller upholds
    // the `GlobalAlloc` layout/pointer contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller upholds the `GlobalAlloc::dealloc` contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: pure forwarding to `System::realloc`; the caller upholds
    // the `GlobalAlloc` layout/pointer contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds the `GlobalAlloc::realloc` contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
