//! Bit-identity gate for the `FragmentScheme` refactor: the
//! sign-alternating scheme routed through the trait (both the builder
//! default and an explicit `.scheme(SignAlternating)`) must reproduce the
//! **pre-refactor** SCF density digest exactly, at every thread count.
//!
//! [`GOLDEN`] was captured from the hard-wired pre-trait geometry by
//! running the identical calculation (`model_crystal([2,2,2], 6.5)`,
//! `small_opts`, `max_scf = 2` — the same workload as
//! `tests/ls3df_pipeline.rs::thread_matrix_child`) before the refactor
//! landed. The digest covers every `rho` sample plus the per-step
//! `dv_integral`/`worst_residual` bit patterns, so any single-bit drift
//! in the fragment enumeration order, `α_F` arithmetic, or wall geometry
//! fails this test.
//!
//! The digest depends on the platform libm (`cos`/`exp`), so it is pinned
//! per build environment, not universally portable. It is also defined on
//! the **reference kernel path** (`LS3DF_KERNELS=reference`: radix-2
//! complex FFTs, scalar dots and GEMM) — the child processes pin that
//! variable, because the default fast kernels (r2c packing, radix-4,
//! lane-split accumulators) legitimately re-round and are gated by
//! `tests/kernel_tol.rs` tolerances instead of bit identity. To
//! regenerate after an *intentional* physics change:
//!
//! ```text
//! LS3DF_SCHEME_DIGEST_CHILD=explicit LS3DF_THREADS=1 LS3DF_KERNELS=reference \
//!   cargo test -q --test scheme_digest -- --exact scheme_digest_child --nocapture
//! ```
//!
//! and copy the printed `LS3DF_DIGEST=` value into [`GOLDEN`] — after
//! confirming the change is supposed to move the density.

use ls3df::core::{Ls3df, Ls3dfOptions, Passivation, SignAlternating};
use ls3df::pw::Mixer;
use ls3df_atoms::{Atom, Species, Structure};
use ls3df_pseudo::PseudoTable;

/// Pre-refactor SCF digest of the reference workload (threads 1/2/max all
/// agree; see the module docs for the capture procedure).
const GOLDEN: u64 = 0xb56c_8071_4d82_04e2;

/// Same deep-well model crystal as `tests/ls3df_pipeline.rs`.
fn model_crystal(m: [usize; 3], a: f64) -> Structure {
    let mut atoms = Vec::new();
    for k in 0..m[2] {
        for j in 0..m[1] {
            for i in 0..m[0] {
                atoms.push(Atom {
                    species: Species::Zn,
                    pos: [
                        (i as f64 + 0.5) * a,
                        (j as f64 + 0.5) * a,
                        (k as f64 + 0.5) * a,
                    ],
                });
            }
        }
    }
    Structure::new([m[0] as f64 * a, m[1] as f64 * a, m[2] as f64 * a], atoms)
}

/// Same options as `tests/ls3df_pipeline.rs::small_opts`, with the
/// thread-matrix `max_scf = 2` baked in.
fn reference_opts() -> Ls3dfOptions {
    Ls3dfOptions {
        ecut: 1.5,
        piece_pts: [8, 8, 8],
        buffer_pts: [3, 3, 3],
        passivation: Passivation::WallOnly,
        wall_height: 1.5,
        n_extra_bands: 2,
        cg_steps: 6,
        initial_cg_steps: 10,
        fragment_tol: 1e-9,
        mixer: Mixer::Kerker {
            alpha: 0.6,
            q0: 0.8,
        },
        max_scf: 2,
        tol: 1e-4,
        pseudo: PseudoTable::deep_well(2.0, 0.8),
        ..Default::default()
    }
}

/// FNV-1a over every rho bit pattern + per-step convergence scalars
/// (identical to the `ls3df_pipeline.rs` digest, so [`GOLDEN`] is
/// directly comparable to that test's pre-refactor output).
fn run_digest(res: &ls3df::core::Ls3dfResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bits: u64| {
        for byte in bits.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &x in res.rho.as_slice() {
        eat(x.to_bits());
    }
    for step in &res.history {
        eat(step.dv_integral.to_bits());
        eat(step.worst_residual.to_bits());
    }
    h
}

/// Child half: inert under a plain `cargo test`; when re-execed with
/// `LS3DF_SCHEME_DIGEST_CHILD` set to `explicit` or `default` it runs the
/// reference workload through that construction path and prints the
/// digest.
#[test]
fn scheme_digest_child() {
    let Ok(mode) = std::env::var("LS3DF_SCHEME_DIGEST_CHILD") else {
        return;
    };
    let s = model_crystal([2, 2, 2], 6.5);
    let builder = Ls3df::builder(&s)
        .fragments([2, 2, 2])
        .options(reference_opts());
    let builder = match mode.as_str() {
        // The trait path the issue gates on: scheme passed explicitly.
        "explicit" => builder.scheme(SignAlternating),
        // The compatibility path: callers that never mention schemes.
        "default" => builder,
        other => panic!("unknown LS3DF_SCHEME_DIGEST_CHILD mode `{other}`"),
    };
    let mut calc = builder.build().expect("valid reference geometry");
    let res = calc.scf();
    println!("LS3DF_DIGEST={:016x}", run_digest(&res));
}

fn child_digest(mode: &str, threads: &str) -> String {
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(&exe)
        .args(["--exact", "scheme_digest_child", "--nocapture"])
        .env("LS3DF_SCHEME_DIGEST_CHILD", mode)
        .env("LS3DF_THREADS", threads)
        .env("LS3DF_KERNELS", "reference")
        .output()
        .expect("spawn scheme_digest_child");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        out.status.success(),
        "child (mode={mode}, LS3DF_THREADS={threads}) failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    stdout
        .lines()
        .find_map(|l| l.split("LS3DF_DIGEST=").nth(1))
        .map(str::trim)
        .unwrap_or_else(|| {
            panic!("no digest line from child (mode={mode}, threads={threads}):\n{stdout}")
        })
        .to_string()
}

/// The acceptance gate: sign-alternating through `FragmentScheme` is
/// bit-identical to the pre-refactor densities at `LS3DF_THREADS` ∈
/// {1, 2, host parallelism}, through both the explicit-`.scheme(..)` and
/// the default construction path.
#[test]
fn sign_alternating_through_trait_matches_pre_refactor_golden() {
    let golden = format!("{GOLDEN:016x}");
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .to_string();
    for threads in ["1", "2", max.as_str()] {
        let digest = child_digest("explicit", threads);
        assert_eq!(
            digest, golden,
            "explicit SignAlternating diverged from the pre-refactor run \
             at LS3DF_THREADS={threads}"
        );
    }
    // The builder default must be the same scheme — one thread count
    // suffices since the explicit path already swept the matrix.
    let digest = child_digest("default", "1");
    assert_eq!(
        digest, golden,
        "builder default scheme diverged from the pre-refactor run"
    );
}
