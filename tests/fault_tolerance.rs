//! Fault-tolerant fragment execution: injected fragment failures (panics
//! and solver errors) must be retried on the deterministic ladder and, if
//! the whole ladder fails, quarantined — with the run completing and every
//! event visible through the `ScfObserver` hooks. At production scale one
//! pathological fragment must never abort a multi-day calculation.

use ls3df::core::{Ls3df, Ls3dfOptions, Ls3dfStep, Passivation};
use ls3df::{FragmentFault, InjectedFault, QuarantineRecord, RetryAction, ScfObserver};
use ls3df_atoms::{Atom, Species, Structure};
use ls3df_pseudo::PseudoTable;

fn model_crystal(m: [usize; 3], a: f64) -> Structure {
    let mut atoms = Vec::new();
    for k in 0..m[2] {
        for j in 0..m[1] {
            for i in 0..m[0] {
                atoms.push(Atom {
                    species: Species::Zn,
                    pos: [
                        (i as f64 + 0.5) * a,
                        (j as f64 + 0.5) * a,
                        (k as f64 + 0.5) * a,
                    ],
                });
            }
        }
    }
    Structure::new([m[0] as f64 * a, m[1] as f64 * a, m[2] as f64 * a], atoms)
}

fn small_calc(max_scf: usize) -> Ls3df {
    let s = model_crystal([2, 2, 2], 6.5);
    let opts = Ls3dfOptions {
        ecut: 1.5,
        piece_pts: [6, 6, 6],
        buffer_pts: [2, 2, 2],
        passivation: Passivation::WallOnly,
        wall_height: 1.5,
        n_extra_bands: 2,
        cg_steps: 10,
        initial_cg_steps: 30,
        fragment_tol: 1e-6,
        max_scf,
        tol: 1e-9,
        pseudo: PseudoTable::deep_well(2.0, 0.8),
        ..Default::default()
    };
    Ls3df::builder(&s)
        .fragments([2, 2, 2])
        .options(opts)
        .build()
        .expect("valid test geometry")
}

/// Observer recording every supervision event in arrival order.
#[derive(Default)]
struct FaultLog {
    retries: Vec<(usize, FragmentFault)>,
    quarantines: Vec<(usize, QuarantineRecord)>,
    steps: usize,
}

impl ScfObserver for &mut FaultLog {
    fn on_step(&mut self, _step: &Ls3dfStep) {
        self.steps += 1;
    }
    fn on_fragment_retry(&mut self, iteration: usize, fault: &FragmentFault) {
        self.retries.push((iteration, fault.clone()));
    }
    fn on_fragment_quarantined(&mut self, iteration: usize, record: &QuarantineRecord) {
        self.quarantines.push((iteration, record.clone()));
    }
}

#[test]
fn injected_solver_error_is_retried_and_recovers() {
    let mut calc = small_calc(2);
    calc.inject_fragment_fault(3, InjectedFault::SolverError, 1);
    let mut log = FaultLog::default();
    let res = calc.scf_with(&mut log);

    // The run completed all iterations and nothing was quarantined.
    assert_eq!(log.steps, 2);
    assert!(res.quarantined.is_empty(), "one retry must not quarantine");
    assert!(log.quarantines.is_empty());
    // Exactly the injected failure was observed: fragment 3, primary
    // attempt, recovered by the first ladder rung.
    assert_eq!(log.retries.len(), 1);
    let (iteration, fault) = &log.retries[0];
    assert_eq!(*iteration, 1);
    assert_eq!(fault.fragment, 3);
    assert_eq!(fault.attempt, 0);
    assert_eq!(fault.action, RetryAction::Primary);
    assert!(fault.detail.contains("injected solver error"), "{fault}");
    // The recovered run still conserves charge.
    assert!((res.rho.integrate() - calc.n_electrons()).abs() < 1e-8);
}

#[test]
fn injected_panic_is_caught_and_retried() {
    let mut calc = small_calc(1);
    calc.inject_fragment_fault(5, InjectedFault::Panic, 1);
    let mut log = FaultLog::default();
    let res = calc.scf_with(&mut log);
    assert!(res.quarantined.is_empty());
    assert_eq!(log.retries.len(), 1);
    let (_, fault) = &log.retries[0];
    assert_eq!(fault.fragment, 5);
    assert!(fault.detail.contains("panic"), "{fault}");
    assert!(fault.detail.contains("injected panic"), "{fault}");
}

#[test]
fn exhausted_ladder_quarantines_without_aborting() {
    let mut calc = small_calc(2);
    // Enough injected panics to poison the primary attempt and every rung
    // of iteration 1's ladder (4 attempts total).
    calc.inject_fragment_fault(7, InjectedFault::Panic, 4);
    let mut log = FaultLog::default();
    let res = calc.scf_with(&mut log);

    // The run survived to the iteration cap.
    assert_eq!(log.steps, 2);
    assert_eq!(res.history.len(), 2);
    // Fragment 7 was quarantined in iteration 1 with the full ladder on
    // record, in ladder order.
    assert_eq!(res.quarantined.len(), 1);
    let q = &res.quarantined[0];
    assert_eq!(q.fragment, 7);
    assert_eq!(q.faults.len(), 4);
    let actions: Vec<RetryAction> = q.faults.iter().map(|f| f.action).collect();
    assert_eq!(
        actions,
        vec![
            RetryAction::Primary,
            RetryAction::FreshRandomStart,
            RetryAction::BandByBand,
            RetryAction::ReducedCg,
        ]
    );
    assert_eq!(log.quarantines.len(), 1);
    assert_eq!(log.quarantines[0].0, 1, "quarantined in iteration 1");
    // Iteration 2 solves fragment 7 normally (injections consumed): no
    // further faults.
    assert!(log.retries.iter().all(|(it, _)| *it == 1));
    // Quarantine reuses the previous density: the global density stays
    // finite and charge-conserving.
    assert!(res.rho.as_slice().iter().all(|v| v.is_finite()));
    assert!((res.rho.integrate() - calc.n_electrons()).abs() < 1e-8);
}

/// The retry ladder is deterministic: the same failure replayed twice
/// produces the same fault stream and a bit-identical final density.
#[test]
fn recovery_is_deterministic() {
    let run = || {
        let mut calc = small_calc(2);
        calc.inject_fragment_fault(3, InjectedFault::SolverError, 2);
        calc.inject_fragment_fault(7, InjectedFault::Panic, 4);
        let mut log = FaultLog::default();
        let res = calc.scf_with(&mut log);
        (res, log)
    };
    let ((res_a, log_a), (res_b, log_b)) = (run(), run());
    let render = |log: &FaultLog| -> Vec<String> {
        log.retries
            .iter()
            .map(|(it, f)| format!("iter {it}: {f}"))
            .collect()
    };
    assert_eq!(render(&log_a), render(&log_b), "fault streams diverged");
    let diverging = res_a
        .rho
        .as_slice()
        .iter()
        .zip(res_b.rho.as_slice())
        .filter(|(x, y)| x.to_bits() != y.to_bits())
        .count();
    assert_eq!(
        diverging, 0,
        "{diverging} grid points differ between reruns"
    );
}

/// `Ls3dfResult::quarantined` stays empty on a healthy run (the field is
/// load-bearing for monitoring: noise would train operators to ignore it).
#[test]
fn healthy_run_reports_no_faults() {
    let mut calc = small_calc(1);
    let mut log = FaultLog::default();
    let res = calc.scf_with(&mut log);
    assert!(res.quarantined.is_empty());
    assert!(log.retries.is_empty());
    assert!(log.quarantines.is_empty());
}
