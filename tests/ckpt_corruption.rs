//! Corruption handling: every way a snapshot can be damaged or misused
//! must surface as a *typed* `CkptError` at resume time — never a panic,
//! never a silent resume into wrong physics.
//!
//! One short checkpointed SCF run writes a genuine snapshot; each test
//! then damages a copy (truncation, a flipped byte per section, a wrong
//! format version, a wrong magic) or misuses it (resume under different
//! physics) and matches the resulting `CkptErrorKind`.

use ls3df::core::{Ls3df, Ls3dfError, Ls3dfOptions, Passivation};
use ls3df::{CheckpointConfig, CheckpointPolicy, CkptError, CkptErrorKind};
use ls3df_atoms::{Atom, Species, Structure};
use ls3df_pseudo::PseudoTable;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

fn model_crystal(m: [usize; 3], a: f64) -> Structure {
    let mut atoms = Vec::new();
    for k in 0..m[2] {
        for j in 0..m[1] {
            for i in 0..m[0] {
                atoms.push(Atom {
                    species: Species::Zn,
                    pos: [
                        (i as f64 + 0.5) * a,
                        (j as f64 + 0.5) * a,
                        (k as f64 + 0.5) * a,
                    ],
                });
            }
        }
    }
    Structure::new([m[0] as f64 * a, m[1] as f64 * a, m[2] as f64 * a], atoms)
}

fn small_opts() -> Ls3dfOptions {
    Ls3dfOptions {
        ecut: 1.5,
        piece_pts: [6, 6, 6],
        buffer_pts: [2, 2, 2],
        passivation: Passivation::WallOnly,
        wall_height: 1.5,
        n_extra_bands: 2,
        cg_steps: 4,
        initial_cg_steps: 12,
        fragment_tol: 1e-6,
        max_scf: 1,
        tol: 1e-6,
        pseudo: PseudoTable::deep_well(2.0, 0.8),
        ..Default::default()
    }
}

fn builder(s: &Structure, opts: Ls3dfOptions) -> ls3df::Ls3dfBuilder<'_> {
    Ls3df::builder(s).fragments([2, 2, 2]).options(opts)
}

/// Writes one genuine snapshot (single SCF iteration, checkpoint on
/// convergence-or-iteration) and caches its bytes for all tests.
fn snapshot_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("ls3df-ckpt-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = model_crystal([2, 2, 2], 6.5);
        let mut calc = builder(&s, small_opts())
            .checkpoint(CheckpointConfig {
                dir: dir.clone(),
                policy: CheckpointPolicy::EveryN(1),
                keep_last: 1,
            })
            .build()
            .expect("valid test geometry");
        let _ = calc.scf();
        let path = ls3df::ckpt::latest_snapshot(&dir)
            .expect("list snapshots")
            .expect("SCF must have written a snapshot");
        let bytes = std::fs::read(path).expect("read snapshot");
        let _ = std::fs::remove_dir_all(&dir);
        bytes
    })
}

/// Writes `bytes` to a unique temp file and tries to resume from it,
/// returning the typed failure (panics if the resume *succeeds*).
fn resume_error(tag: &str, bytes: &[u8]) -> CkptError {
    let path = std::env::temp_dir().join(format!(
        "ls3df-ckpt-corrupt-{}-{tag}.ls3df",
        std::process::id()
    ));
    std::fs::write(&path, bytes).expect("write damaged snapshot");
    let err = resume_error_at(&path, small_opts());
    let _ = std::fs::remove_file(&path);
    err
}

fn resume_error_at(path: &Path, opts: Ls3dfOptions) -> CkptError {
    let s = model_crystal([2, 2, 2], 6.5);
    match builder(&s, opts).resume_from(path).build() {
        Ok(_) => panic!("resume from {} must fail", path.display()),
        Err(Ls3dfError::Resume(e)) => e,
        Err(other) => panic!("expected Ls3dfError::Resume, got {other:?}"),
    }
}

/// Walks the container layout (magic 8 + version 4 + count 4, then per
/// section: id 8 + len 8 + crc 4 + payload) and returns each section's
/// (name, payload offset, payload length).
fn section_spans(bytes: &[u8]) -> Vec<(String, usize, usize)> {
    let count = u32::from_le_bytes(bytes[12..16].try_into().expect("count")) as usize;
    let mut spans = Vec::new();
    let mut at = 16;
    for _ in 0..count {
        let name = String::from_utf8_lossy(&bytes[at..at + 8])
            .trim_end()
            .to_string();
        let len = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().expect("len")) as usize;
        let payload = at + 20;
        spans.push((name, payload, len));
        at = payload + len;
    }
    spans
}

#[test]
fn truncated_snapshot_is_a_typed_error() {
    let good = snapshot_bytes();
    // Cut mid-payload of the last section…
    let err = resume_error("trunc-payload", &good[..good.len() - good.len() / 4]);
    assert_eq!(err.kind(), CkptErrorKind::Truncated, "{err}");
    // …and mid-header.
    let err = resume_error("trunc-header", &good[..10]);
    assert_eq!(err.kind(), CkptErrorKind::Truncated, "{err}");
}

#[test]
fn one_flipped_byte_in_any_section_is_caught_by_that_sections_crc() {
    let good = snapshot_bytes();
    let spans = section_spans(good);
    assert!(spans.len() >= 8, "snapshot should carry all 8 sections");
    for (name, payload, len) in spans {
        assert!(len > 0, "section {name} is empty");
        let mut bad = good.to_vec();
        bad[payload + len / 2] ^= 0x40;
        let err = resume_error(&format!("flip-{name}"), &bad);
        assert_eq!(err.kind(), CkptErrorKind::CrcMismatch, "{name}: {err}");
        let msg = err.to_string();
        assert!(
            msg.contains(&name),
            "CRC error must name the damaged section `{name}`: {msg}"
        );
    }
}

#[test]
fn wrong_format_version_and_magic_are_typed_errors() {
    let good = snapshot_bytes();
    let mut wrong_version = good.to_vec();
    wrong_version[8..12].copy_from_slice(&99u32.to_le_bytes());
    let err = resume_error("version", &wrong_version);
    assert_eq!(err.kind(), CkptErrorKind::UnsupportedVersion, "{err}");

    let mut wrong_magic = good.to_vec();
    wrong_magic[..8].copy_from_slice(b"NOTLS3DF");
    let err = resume_error("magic", &wrong_magic);
    assert_eq!(err.kind(), CkptErrorKind::BadMagic, "{err}");
}

#[test]
fn resume_under_different_physics_is_refused() {
    let good = snapshot_bytes();
    let path = std::env::temp_dir().join(format!(
        "ls3df-ckpt-corrupt-{}-fingerprint.ls3df",
        std::process::id()
    ));
    std::fs::write(&path, good).expect("write snapshot");
    // Same geometry, different cutoff: different physics fingerprint.
    let hot = Ls3dfOptions {
        ecut: 2.5,
        ..small_opts()
    };
    let err = resume_error_at(&path, hot);
    assert_eq!(err.kind(), CkptErrorKind::FingerprintMismatch, "{err}");
    assert!(err.to_string().contains("different physics"), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_under_different_fragmentation_scheme_is_refused_by_name() {
    let good = snapshot_bytes();
    let path = std::env::temp_dir().join(format!(
        "ls3df-ckpt-corrupt-{}-scheme.ls3df",
        std::process::id()
    ));
    std::fs::write(&path, good).expect("write snapshot");
    // The snapshot was written under the default sign-alternating scheme;
    // the same geometry under overlapping fragments is different physics.
    let s = model_crystal([2, 2, 2], 6.5);
    let err = match builder(&s, small_opts())
        .scheme(ls3df::Overlapping::default())
        .resume_from(&path)
        .build()
    {
        Ok(_) => panic!("cross-scheme resume must fail"),
        Err(Ls3dfError::Resume(e)) => e,
        Err(other) => panic!("expected Ls3dfError::Resume, got {other:?}"),
    };
    assert_eq!(err.kind(), CkptErrorKind::FingerprintMismatch, "{err}");
    let msg = err.to_string();
    assert!(
        msg.contains("sign-alternating") && msg.contains("overlapping"),
        "refusal must name both schemes so the operator knows what to fix: {msg}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn missing_snapshot_file_is_an_io_error() {
    let ghost = PathBuf::from("/nonexistent/ls3df/scf-000001.ls3df");
    let err = resume_error_at(&ghost, small_opts());
    assert_eq!(err.kind(), CkptErrorKind::Io, "{err}");
}
