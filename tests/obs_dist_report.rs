//! The rank-aware observability gate (`cargo xtask ci` step
//! `obs-dist`): obs-enabled multi-group SCF runs must fold every rank's
//! telemetry into **one** merged schema-v2 report.
//!
//! Two legs:
//!
//! * `committed_fig5_report_is_schema_valid` — the checked-in
//!   `BENCH_fig5.json` parses, validates against the report schema, and
//!   its measured points (when present) carry the imbalance/straggler
//!   columns. Runs with or without the `obs` feature.
//! * `merged_report_counters_sum_to_single_process_totals` — SPMD
//!   subprocess matrix at `LS3DF_GROUPS ∈ {1, 2, 4}` (same re-exec
//!   pattern as `tests/dist_digest.rs`): every group count's merged
//!   report must account for the *same* total `fragment_solves`, the
//!   multi-group reports must carry one `up` rank section per group
//!   with per-rank counters summing to the single-process total, and
//!   the derived straggler-gap / imbalance / comm-attribution sections
//!   must be present. Only meaningful with spans compiled in, so it is
//!   a no-op without the `obs` feature.

use ls3df::core::{Ls3df, Ls3dfOptions, Passivation, TraceObserver};
use ls3df::obs::Json;
use ls3df::pw::Mixer;
use ls3df_atoms::{Atom, Species, Structure};
use ls3df_pseudo::PseudoTable;
use std::path::Path;

fn model_crystal(m: [usize; 3], a: f64) -> Structure {
    let mut atoms = Vec::new();
    for k in 0..m[2] {
        for j in 0..m[1] {
            for i in 0..m[0] {
                atoms.push(Atom {
                    species: Species::Zn,
                    pos: [
                        (i as f64 + 0.5) * a,
                        (j as f64 + 0.5) * a,
                        (k as f64 + 0.5) * a,
                    ],
                });
            }
        }
    }
    Structure::new([m[0] as f64 * a, m[1] as f64 * a, m[2] as f64 * a], atoms)
}

/// Fixed iteration count (tol never met in 2 iterations) so every group
/// count does identical work and `fragment_solves` totals are exact.
fn fixed_work_opts() -> Ls3dfOptions {
    Ls3dfOptions {
        ecut: 1.5,
        piece_pts: [8, 8, 8],
        buffer_pts: [3, 3, 3],
        passivation: Passivation::WallOnly,
        wall_height: 1.5,
        n_extra_bands: 2,
        cg_steps: 4,
        initial_cg_steps: 6,
        fragment_tol: 1e-9,
        mixer: Mixer::Kerker {
            alpha: 0.6,
            q0: 0.8,
        },
        max_scf: 2,
        tol: 1e-10,
        pseudo: PseudoTable::deep_well(2.0, 0.8),
        ..Default::default()
    }
}

#[test]
fn committed_fig5_report_is_schema_valid() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_fig5.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let doc = ls3df::obs::report::validate_report_str(&text)
        .unwrap_or_else(|e| panic!("committed BENCH_fig5.json fails schema validation: {e}"));
    let extra = doc
        .get("extra")
        .and_then(Json::as_object)
        .expect("extra object");
    let measured = extra
        .iter()
        .find(|(k, _)| k == "measured_points")
        .and_then(|(_, v)| v.as_array())
        .expect("measured_points array");
    for point in measured {
        for key in [
            "imbalance_ratio",
            "predicted_imbalance_ratio",
            "straggler_gap_seconds",
        ] {
            assert!(
                point.get(key).and_then(Json::as_f64).is_some(),
                "measured point lacks numeric `{key}`: {}",
                point.render()
            );
        }
    }
}

/// Child half (inert under a plain `cargo test`): one SCF at whatever
/// `LS3DF_GROUPS` this process carries, collected through a
/// [`TraceObserver`]. Rank 0 writes the merged report to the path in
/// `LS3DF_OBS_DIST_REPORT_PATH` (the document is multi-line, so it
/// travels by file, not stdout) and prints the fragment count.
#[test]
fn obs_dist_child() {
    if std::env::var("LS3DF_OBS_DIST_CHILD").is_err() {
        return;
    }
    let s = model_crystal([2, 2, 2], 6.5);
    let mut calc = Ls3df::builder(&s)
        .fragments([2, 2, 2])
        .options(fixed_work_opts())
        .build()
        .expect("obs-dist world must bootstrap");
    if calc.comm().rank() != 0 {
        // Worker rank: run the loop; the driver's telemetry epilogue
        // ships this rank's harvest to rank 0 before returning.
        let _ = calc.try_scf();
        return;
    }
    let n_frags = calc.n_fragments();
    let mut tracer = TraceObserver::new("obs-dist-child");
    calc.try_scf_with(&mut tracer)
        .expect("obs-dist SCF must complete");
    let report = tracer.finish();
    let path = std::env::var("LS3DF_OBS_DIST_REPORT_PATH").expect("report path env");
    report
        .write(Path::new(&path))
        .expect("write merged run report");
    println!("OBS_NFRAGS={n_frags}");
}

fn rank_counter(rank: &Json, name: &str) -> u64 {
    rank.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_f64)
        .unwrap_or(0.0) as u64
}

/// Parent gate: re-execs the child once per group count and checks the
/// merged reports against each other.
#[test]
fn merged_report_counters_sum_to_single_process_totals() {
    if !ls3df::obs::ENABLED {
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let dir = std::env::temp_dir().join(format!("ls3df_obs_dist_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("report scratch dir");
    let mut totals: Vec<(usize, u64)> = Vec::new();
    for groups in [1usize, 2, 4] {
        let report_path = dir.join(format!("report_groups{groups}.json"));
        let out = std::process::Command::new(&exe)
            .args(["--exact", "obs_dist_child", "--nocapture"])
            .env("LS3DF_OBS_DIST_CHILD", "1")
            .env("LS3DF_GROUPS", groups.to_string())
            .env("LS3DF_THREADS", "2")
            .env("LS3DF_KERNELS", "reference")
            .env("LS3DF_DIST_TIMEOUT_MS", "60000")
            .env("LS3DF_OBS_DIST_REPORT_PATH", &report_path)
            .output()
            .expect("spawn obs_dist_child");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
        assert!(
            out.status.success(),
            "obs-dist child (groups={groups}) failed:\n{stdout}\n{stderr}"
        );
        let n_frags: u64 = stdout
            .lines()
            .find_map(|l| l.split("OBS_NFRAGS=").nth(1))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("no OBS_NFRAGS line (groups={groups}):\n{stdout}"));
        // 2 fixed iterations solve every fragment exactly twice.
        let expected = 2 * n_frags;

        let text = std::fs::read_to_string(&report_path)
            .unwrap_or_else(|e| panic!("read {}: {e}", report_path.display()));
        let doc = ls3df::obs::report::validate_report_str(&text)
            .unwrap_or_else(|e| panic!("merged report (groups={groups}) invalid: {e}"));
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_f64),
            Some(2.0),
            "merged report must be schema v2"
        );
        assert_eq!(
            doc.get("telemetry_incomplete").and_then(Json::as_bool),
            Some(false),
            "healthy run must not be flagged incomplete (groups={groups})"
        );
        let ranks = doc
            .get("ranks")
            .and_then(Json::as_array)
            .expect("ranks array");
        let total = if groups == 1 {
            // Single-process world: no merge, the flat counter table is
            // the whole story.
            assert!(ranks.is_empty(), "no rank sections in a world of one");
            doc.get("counters")
                .and_then(|c| c.get("fragment_solves"))
                .and_then(Json::as_f64)
                .expect("fragment_solves counter") as u64
        } else {
            assert_eq!(ranks.len(), groups, "one rank section per group");
            let mut sum = 0;
            for (r, rank) in ranks.iter().enumerate() {
                assert_eq!(
                    rank.get("status").and_then(Json::as_str),
                    Some("up"),
                    "rank {r} must be up (groups={groups})"
                );
                let solves = rank_counter(rank, "fragment_solves");
                assert!(solves > 0, "rank {r} solved nothing (groups={groups})");
                sum += solves;
            }
            // The derived sections exist for multi-rank runs.
            let extra = doc
                .get("extra")
                .and_then(Json::as_object)
                .expect("extra object");
            for key in ["straggler_gap", "imbalance", "comm_attribution"] {
                assert!(
                    extra.iter().any(|(k, _)| k == key),
                    "merged report lacks derived `{key}` section (groups={groups})"
                );
            }
            sum
        };
        assert_eq!(
            total, expected,
            "fragment_solves must account for every solve (groups={groups})"
        );
        totals.push((groups, total));
    }
    let baseline = totals[0].1;
    for (groups, total) in &totals {
        assert_eq!(
            *total, baseline,
            "group count {groups} changed the amount of work accounted for"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
