//! Worker-failure robustness for the processor-group transport: killing
//! a worker process mid-iteration must surface as a **typed**
//! [`ls3df::Ls3dfError::Comm`] naming the dead rank — never a hang. The
//! bounded receive (`LS3DF_DIST_TIMEOUT_MS`) is the backstop; the hub's
//! reader threads normally detect the closed socket well before it.
//!
//! Same SPMD child pattern as `tests/dist_digest.rs`: the parent re-execs
//! this binary with `LS3DF_DIST_FAULT_CHILD=1`; the child is the
//! launcher (rank 0), kills its own rank-1 worker from an observer hook
//! between Gen_VF and the PEtot report receive, and checks the error it
//! gets back.

use ls3df::core::observer::{ScfObserver, ScfStage};
use ls3df::core::{Ls3df, Ls3dfError, Ls3dfOptions, Passivation};
use ls3df::pw::Mixer;
use ls3df_atoms::{Atom, Species, Structure};
use ls3df_pseudo::PseudoTable;

fn model_crystal(m: [usize; 3], a: f64) -> Structure {
    let mut atoms = Vec::new();
    for k in 0..m[2] {
        for j in 0..m[1] {
            for i in 0..m[0] {
                atoms.push(Atom {
                    species: Species::Zn,
                    pos: [
                        (i as f64 + 0.5) * a,
                        (j as f64 + 0.5) * a,
                        (k as f64 + 0.5) * a,
                    ],
                });
            }
        }
    }
    Structure::new([m[0] as f64 * a, m[1] as f64 * a, m[2] as f64 * a], atoms)
}

fn small_opts() -> Ls3dfOptions {
    Ls3dfOptions {
        ecut: 1.5,
        piece_pts: [8, 8, 8],
        buffer_pts: [3, 3, 3],
        passivation: Passivation::WallOnly,
        wall_height: 1.5,
        n_extra_bands: 2,
        cg_steps: 4,
        initial_cg_steps: 6,
        fragment_tol: 1e-9,
        mixer: Mixer::Kerker {
            alpha: 0.6,
            q0: 0.8,
        },
        max_scf: 2,
        tol: 1e-4,
        pseudo: PseudoTable::deep_well(2.0, 0.8),
        ..Default::default()
    }
}

/// Kills worker rank 1 the moment the launcher finishes Gen_VF of the
/// first iteration — i.e. while the worker is (or is about to be) busy
/// solving, before its PEtot report can arrive.
struct KillWorkerMidIteration {
    killed: bool,
}

impl ScfObserver for KillWorkerMidIteration {
    fn on_stage(&mut self, iteration: usize, stage: ScfStage, _seconds: f64) {
        if iteration == 1 && stage == ScfStage::GenVf && !self.killed {
            self.killed = ls3df::dist::kill_worker(1);
            assert!(self.killed, "kill_worker(1) found no spawned worker");
        }
    }
}

/// Child half (inert under a plain `cargo test`): launches a 2-group
/// world, kills rank 1 mid-iteration, and requires a typed Comm error
/// that names the dead rank.
#[test]
fn dist_fault_child() {
    if std::env::var("LS3DF_DIST_FAULT_CHILD").is_err() {
        return;
    }
    // Workers re-exec this test and land here too; their build() joins
    // the world and their SCF dies with the hub — rank 1 by the kill,
    // any others by bounded receive. Only rank 0's verdict matters.
    let s = model_crystal([2, 2, 2], 6.5);
    let mut calc = Ls3df::builder(&s)
        .fragments([2, 2, 2])
        .options(small_opts())
        .groups(2)
        .build()
        .expect("2-group world must bootstrap");
    if calc.comm().rank() != 0 {
        // A worker rank: run the loop; it is expected to fail once the
        // launcher stops participating. Exit quietly either way.
        let _ = calc.try_scf();
        return;
    }
    let err = match calc.try_scf_with(KillWorkerMidIteration { killed: false }) {
        Err(e) => e,
        Ok(_) => panic!("SCF must fail, not hang, when a worker dies"),
    };
    let Ls3dfError::Comm(comm_err) = &err else {
        panic!("expected Ls3dfError::Comm, got: {err}");
    };
    let msg = err.to_string();
    assert!(
        msg.contains("rank 1"),
        "error must name the dead rank: {msg} ({comm_err:?})"
    );
    println!("LS3DF_FAULT_OK={msg}");
}

/// The parent gate: the child must exit successfully (no hang — the
/// 15 s receive bound backstops the reader-thread EOF detection) and
/// report the typed error naming rank 1.
#[test]
fn killed_worker_surfaces_as_typed_error_naming_the_rank() {
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(&exe)
        .args(["--exact", "dist_fault_child", "--nocapture"])
        .env("LS3DF_DIST_FAULT_CHILD", "1")
        .env("LS3DF_DIST_TIMEOUT_MS", "15000")
        .env("LS3DF_THREADS", "2")
        .env("LS3DF_KERNELS", "reference")
        .output()
        .expect("spawn dist_fault_child");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "fault child failed:\n{stdout}\n{stderr}"
    );
    let line = stdout
        .lines()
        .find(|l| l.contains("LS3DF_FAULT_OK="))
        .unwrap_or_else(|| panic!("no LS3DF_FAULT_OK line:\n{stdout}\n{stderr}"));
    assert!(
        line.contains("rank 1"),
        "typed error must name the dead rank: {line}"
    );
}

/// Child half of the observability leg (inert under a plain
/// `cargo test`): the same kill scenario collected through a
/// [`ls3df::core::TraceObserver`] — the merged schema-v2 report must
/// carry a `ranks` section where the dead rank is `down` with a typed
/// comm-error kind, and `telemetry_incomplete` must be set.
#[test]
fn dist_fault_obs_child() {
    if std::env::var("LS3DF_DIST_FAULT_OBS_CHILD").is_err() {
        return;
    }
    let s = model_crystal([2, 2, 2], 6.5);
    let mut calc = Ls3df::builder(&s)
        .fragments([2, 2, 2])
        .options(small_opts())
        .groups(2)
        .build()
        .expect("2-group world must bootstrap");
    if calc.comm().rank() != 0 {
        let _ = calc.try_scf();
        return;
    }
    let mut tracer = ls3df::core::TraceObserver::new("dist-fault-obs");
    // The kill hook and the collector ride the same observer slot.
    struct KillAndTrace<'a> {
        kill: KillWorkerMidIteration,
        tracer: &'a mut ls3df::core::TraceObserver,
    }
    impl ScfObserver for KillAndTrace<'_> {
        fn on_stage(&mut self, iteration: usize, stage: ScfStage, seconds: f64) {
            self.kill.on_stage(iteration, stage, seconds);
            let mut t = &mut *self.tracer;
            t.on_stage(iteration, stage, seconds);
        }
    }
    let err = match calc.try_scf_with(KillAndTrace {
        kill: KillWorkerMidIteration { killed: false },
        tracer: &mut tracer,
    }) {
        Err(e) => e,
        Ok(_) => panic!("SCF must fail, not hang, when a worker dies"),
    };
    assert!(
        matches!(err, Ls3dfError::Comm(_)),
        "typed Comm error: {err}"
    );
    let report = tracer.finish();
    assert!(
        report.telemetry_incomplete,
        "a dead worker must flag the merged report incomplete"
    );
    assert_eq!(report.ranks.len(), 2, "one rank section per group");
    let kind = match &report.ranks[1].status {
        ls3df::obs::RankStatus::Down { kind } => kind.clone(),
        other => panic!("rank 1 must be down in the merged report, got {other:?}"),
    };
    assert!(
        kind == "rank_down" || kind == "timeout",
        "down kind must be a typed comm-error kind: {kind}"
    );
    // The assembled document still validates against the v2 schema.
    let text = report.to_json().render();
    ls3df::obs::report::validate_report_str(&text).expect("fault report must stay schema-valid");
    println!("LS3DF_FAULT_OBS_OK={kind}");
}

/// Parent gate for the observability leg: only meaningful when spans
/// and counters are compiled in.
#[test]
fn killed_worker_lands_down_in_merged_report() {
    if !ls3df::obs::ENABLED {
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(&exe)
        .args(["--exact", "dist_fault_obs_child", "--nocapture"])
        .env("LS3DF_DIST_FAULT_OBS_CHILD", "1")
        .env("LS3DF_DIST_TIMEOUT_MS", "15000")
        .env("LS3DF_THREADS", "2")
        .env("LS3DF_KERNELS", "reference")
        .output()
        .expect("spawn dist_fault_obs_child");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "obs fault child failed:\n{stdout}\n{stderr}"
    );
    assert!(
        stdout.lines().any(|l| l.contains("LS3DF_FAULT_OBS_OK=")),
        "no LS3DF_FAULT_OBS_OK line:\n{stdout}\n{stderr}"
    );
}
