//! Contract tests for the [`FragmentScheme`] trait: every scheme in the
//! registry must actually deliver the partition-of-unity bound it
//! advertises, across decompositions and buffer widths, and the surrounding
//! API (typed errors, `FragmentId`, builder `.scheme(..)`) must hold up.

use std::sync::Arc;

use ls3df::core::{
    registered_schemes, FragmentError, FragmentGrid, Ls3df, Ls3dfError, Ls3dfOptions, Overlapping,
    SignAlternating,
};
use ls3df_ckpt::Fingerprint;
use ls3df_grid::Grid3;

/// A global grid with `pts` points per piece on an `m` decomposition.
fn grid(m: [usize; 3], pts: usize) -> Grid3 {
    Grid3::new(
        [m[0] * pts, m[1] * pts, m[2] * pts],
        [m[0] as f64 * 4.0, m[1] as f64 * 4.0, m[2] as f64 * 4.0],
    )
}

/// The core property: every registered scheme satisfies its own declared
/// partition-of-unity tolerance for every valid decomposition in
/// m ∈ {2,3,4}³ and buffer widths {0,1,2}. Invalid (scheme, m)
/// combinations must be rejected by `validate` — never silently built.
#[test]
fn every_registered_scheme_satisfies_its_unity_contract() {
    let mut checked = 0usize;
    for scheme in registered_schemes() {
        for mx in 2..=4usize {
            for my in 2..=4usize {
                for mz in 2..=4usize {
                    let m = [mx, my, mz];
                    if scheme.validate(m).is_err() {
                        // e.g. Overlapping([3,3,3]) needs m ≥ 3 per axis;
                        // the typed rejection is the contract here.
                        continue;
                    }
                    for b in 0..=2usize {
                        let g = grid(m, 3);
                        let fg = FragmentGrid::with_scheme(scheme.clone(), m, &g, [b; 3])
                            .unwrap_or_else(|e| {
                                panic!("{} rejected valid m={m:?}: {e}", scheme.id())
                            });
                        let dev = fg.partition_of_unity(&g);
                        let tol = fg.unity_tolerance();
                        assert!(
                            dev <= tol,
                            "scheme `{}` breaks partition of unity at m={m:?} buffer={b}: \
                             deviation {dev:e} > declared tolerance {tol:e}",
                            scheme.id()
                        );
                        checked += 1;
                    }
                }
            }
        }
    }
    // Guard against the sweep silently skipping everything.
    assert!(
        checked >= 100,
        "only {checked} (scheme, m, buffer) cases ran"
    );
}

/// Overlapping weights are strictly positive, uniform, and sum to one
/// over the overlap count; sign-alternating weights are exactly ±1.
#[test]
fn weight_families_match_scheme_kind() {
    let g = grid([3, 3, 3], 3);
    let fg =
        FragmentGrid::with_scheme(Arc::new(Overlapping::default()), [3, 3, 3], &g, [1; 3]).unwrap();
    for f in fg.fragments() {
        assert!(f.alpha() > 0.0, "overlapping weight must be positive");
        assert_eq!(f.alpha(), 1.0 / 8.0, "uniform 1/(e1·e2·e3) weight");
    }

    let fg = FragmentGrid::new([3, 3, 3], &g, [1; 3]).unwrap();
    let mut plus = 0usize;
    let mut minus = 0usize;
    for f in fg.fragments() {
        assert!(
            f.alpha() == 1.0 || f.alpha() == -1.0,
            "sign-alternating weight must be ±1, got {}",
            f.alpha()
        );
        if f.alpha() > 0.0 {
            plus += 1;
        } else {
            minus += 1;
        }
    }
    // 4 positive and 4 negative pieces per corner (paper Fig. 1).
    assert_eq!(plus, minus);
}

/// `FragmentId` is `Copy`, hashable, and displays the corner + extent.
#[test]
fn fragment_id_is_copyable_and_displays() {
    let g = grid([2, 2, 2], 4);
    let fg = FragmentGrid::new([2, 2, 2], &g, [1; 3]).unwrap();
    let ids: std::collections::HashSet<_> = fg.fragments().iter().map(|f| f.id()).collect();
    assert_eq!(ids.len(), fg.n_fragments(), "ids are unique per fragment");
    let f = fg.fragments()[0];
    let id = f.id();
    let copy = id; // Copy, not move
    assert_eq!(id, copy);
    let text = format!("{id}");
    assert!(
        text.contains(&format!("({}x{}x{})", f.size[0], f.size[1], f.size[2])),
        "display `{text}` should show the extent"
    );
}

/// The builder surfaces scheme validation failures as the typed
/// `Ls3dfError::Fragmentation` — not a panic, not a stringly error.
#[test]
fn builder_surfaces_typed_scheme_errors() {
    let s = ls3df::Structure::new(
        [8.0, 8.0, 8.0],
        vec![ls3df::atoms::Atom {
            species: ls3df::atoms::Species::Zn,
            pos: [4.0, 4.0, 4.0],
        }],
    );
    // Overlapping([3,3,3]) on a 2×2×2 decomposition: every axis too small.
    let Err(err) = Ls3df::builder(&s)
        .fragments([2, 2, 2])
        .options(Ls3dfOptions::default())
        .scheme(Overlapping::new([3, 3, 3]))
        .build()
    else {
        panic!("m=2 must be rejected for a 3-wide overlapping extent");
    };
    match err {
        Ls3dfError::Fragmentation(FragmentError::TooFewPieces {
            scheme,
            axis,
            m,
            min,
        }) => {
            assert_eq!(scheme, "overlapping");
            assert_eq!(axis, 0);
            assert_eq!(m, 2);
            assert_eq!(min, 3);
        }
        other => panic!("expected TooFewPieces, got {other:?}"),
    }
    // A zero extent is a distinct, equally typed failure.
    let Err(err) = Ls3df::builder(&s)
        .fragments([2, 2, 2])
        .options(Ls3dfOptions::default())
        .scheme(Overlapping::new([2, 0, 2]))
        .build()
    else {
        panic!("zero extent must be rejected");
    };
    assert!(matches!(
        err,
        Ls3dfError::Fragmentation(FragmentError::EmptyExtent { axis: 1, .. })
    ));
}

/// Scheme fingerprints separate schemes and their parameters, so
/// checkpoints cannot silently resume across fragmentation changes.
#[test]
fn scheme_fingerprints_are_distinguishing() {
    let digest = |scheme: &dyn ls3df::FragmentScheme| {
        let mut fp = Fingerprint::new();
        fp.push_str(scheme.id());
        scheme.fingerprint(&mut fp);
        fp.finish()
    };
    let sign = digest(&SignAlternating);
    let ov2 = digest(&Overlapping::default());
    let ov3 = digest(&Overlapping::new([3, 3, 3]));
    assert_ne!(sign, ov2, "schemes must fingerprint differently");
    assert_ne!(ov2, ov3, "scheme parameters must fingerprint differently");
    assert_eq!(
        digest(&Overlapping::new([2, 2, 2])),
        ov2,
        "equal parameters fingerprint equally"
    );
}
