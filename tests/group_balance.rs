//! Property tests for the fragment→group load balancer
//! (`ls3df_core::groups`): the space-filling-curve + cost-model
//! bin-packing behind the paper's two-level processor-group hierarchy.
//!
//! Three properties over group counts 1..=8 and piece decompositions
//! `m ∈ {2,3,4}³` with randomized atom placements:
//!
//! 1. **Exactly-once**: every fragment appears in exactly one group, and
//!    the `owner` array agrees with the per-group member lists.
//! 2. **Imbalance bound**: the heaviest group's modeled cost never
//!    exceeds `ceil(total/M) + heaviest single fragment` — i.e. the
//!    max/mean imbalance is bounded by the heaviest fragment over the
//!    mean (checked in exact integer arithmetic).
//! 3. **Determinism**: planning twice over the same inputs yields the
//!    identical `GroupPlan` (the assignment feeds cross-process digests,
//!    so platform- and run-independence is a correctness property).

use ls3df::atoms::{Atom, Species};
use ls3df::grid::Grid3;
use ls3df::{fragment_costs, plan_groups, FragmentGrid, Structure};
use proptest::prelude::*;

/// Deterministic pseudo-random structure: `n_atoms` atoms scattered in a
/// box sized to the decomposition (LCG from `seed`, no external RNG).
fn model_structure(m: [usize; 3], n_atoms: usize, seed: u64) -> Structure {
    let lengths = [m[0] as f64 * 5.0, m[1] as f64 * 5.0, m[2] as f64 * 5.0];
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    };
    let atoms = (0..n_atoms)
        .map(|i| Atom {
            species: if i % 2 == 0 { Species::Zn } else { Species::Te },
            pos: [
                next() * lengths[0],
                next() * lengths[1],
                next() * lengths[2],
            ],
        })
        .collect();
    Structure::new(lengths, atoms)
}

/// The shared fixture: a decomposition with 4 grid points per piece per
/// axis (geometry only — no planewave machinery is built here).
fn fixture(m: [usize; 3], n_atoms: usize, seed: u64) -> (FragmentGrid, Structure) {
    let s = model_structure(m, n_atoms, seed);
    let global = Grid3::new([m[0] * 4, m[1] * 4, m[2] * 4], s.lengths);
    let fg = FragmentGrid::new(m, &global, [1, 1, 1]).expect("valid decomposition");
    (fg, s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_fragment_assigned_exactly_once(
        mx in 2usize..5,
        my in 2usize..5,
        mz in 2usize..5,
        n_groups in 1usize..9,
        n_atoms in 0usize..48,
        seed in 0u64..1000,
    ) {
        let (fg, s) = fixture([mx, my, mz], n_atoms, seed);
        let plan = plan_groups(&fg, &s, n_groups);
        let n = fg.n_fragments();
        prop_assert_eq!(plan.n_groups, n_groups);
        prop_assert_eq!(plan.owner.len(), n);
        prop_assert_eq!(plan.groups.len(), n_groups);
        let mut seen = vec![0usize; n];
        for (g, members) in plan.groups.iter().enumerate() {
            for &f in members {
                prop_assert!(f < n, "group {} names unknown fragment {}", g, f);
                seen[f] += 1;
                prop_assert_eq!(
                    plan.owner[f], g,
                    "owner array disagrees with group {} membership", g
                );
            }
        }
        for (f, &count) in seen.iter().enumerate() {
            prop_assert_eq!(count, 1, "fragment {} assigned {} times", f, count);
        }
    }

    #[test]
    fn imbalance_bounded_by_heaviest_fragment(
        mx in 2usize..5,
        my in 2usize..5,
        mz in 2usize..5,
        n_groups in 1usize..9,
        n_atoms in 0usize..48,
        seed in 0u64..1000,
    ) {
        let (fg, s) = fixture([mx, my, mz], n_atoms, seed);
        let plan = plan_groups(&fg, &s, n_groups);
        let costs = fragment_costs(&fg, &s);
        // Per-group bookkeeping is consistent with the per-fragment model.
        for (gi, members) in plan.groups.iter().enumerate() {
            let sum: u64 = members.iter().map(|&f| costs[f]).sum();
            prop_assert_eq!(sum, plan.costs[gi], "group {} cost mismatch", gi);
        }
        let total: u64 = costs.iter().sum();
        let heaviest = costs.iter().copied().max().unwrap_or(0);
        let max_group = plan.costs.iter().copied().max().unwrap_or(0);
        let g = n_groups as u64;
        // max ≤ ceil(total/M) + heaviest, exactly, in integers:
        // M·max ≤ total + (M−1) + M·heaviest. Dividing by M·mean gives
        // the advertised bound max/mean − 1 ≤ heaviest/mean (+ rounding).
        prop_assert!(
            g * max_group <= total + (g - 1) + g * heaviest,
            "imbalance bound violated: groups={}, max_group={}, total={}, heaviest={}",
            n_groups, max_group, total, heaviest
        );
    }

    #[test]
    fn plan_is_deterministic(
        mx in 2usize..5,
        my in 2usize..5,
        mz in 2usize..5,
        n_groups in 1usize..9,
        n_atoms in 0usize..48,
        seed in 0u64..1000,
    ) {
        let (fg, s) = fixture([mx, my, mz], n_atoms, seed);
        let p1 = plan_groups(&fg, &s, n_groups);
        let p2 = plan_groups(&fg, &s, n_groups);
        prop_assert_eq!(p1, p2);
    }
}
