//! Fault-injection tests for the `ls3df_core::check` invariant layer:
//! deliberately corrupt the pipeline state and confirm the checks catch it
//! with the right SCF step name (debug/test builds compile the layer in;
//! see `ls3df_core::check::ENABLED`).

use ls3df::core::{Ls3df, Ls3dfOptions, Passivation};
use ls3df::pw::Mixer;
use ls3df_atoms::{Atom, Species, Structure};
use ls3df_pseudo::PseudoTable;

fn model_crystal(m: [usize; 3], a: f64) -> Structure {
    let mut atoms = Vec::new();
    for k in 0..m[2] {
        for j in 0..m[1] {
            for i in 0..m[0] {
                atoms.push(Atom {
                    species: Species::Zn,
                    pos: [
                        (i as f64 + 0.5) * a,
                        (j as f64 + 0.5) * a,
                        (k as f64 + 0.5) * a,
                    ],
                });
            }
        }
    }
    Structure::new([m[0] as f64 * a, m[1] as f64 * a, m[2] as f64 * a], atoms)
}

fn small_opts(table: PseudoTable) -> Ls3dfOptions {
    Ls3dfOptions {
        ecut: 1.5,
        piece_pts: [8, 8, 8],
        buffer_pts: [3, 3, 3],
        passivation: Passivation::WallOnly,
        wall_height: 1.5,
        n_extra_bands: 2,
        cg_steps: 6,
        initial_cg_steps: 10,
        fragment_tol: 1e-9,
        mixer: Mixer::Kerker {
            alpha: 0.6,
            q0: 0.8,
        },
        max_scf: 2,
        tol: 1e-4,
        pseudo: table,
        ..Default::default()
    }
}

fn small_calc() -> Ls3df {
    let s = model_crystal([2, 2, 2], 6.5);
    let table = PseudoTable::deep_well(2.0, 0.8);
    Ls3df::builder(&s)
        .fragments([2, 2, 2])
        .options(small_opts(table))
        .build()
        .expect("valid test geometry")
}

/// A fragment whose density went wrong (here: its wavefunctions scaled by
/// 10, inflating its density 100×) must trip the Gen_dens charge check
/// *before* the renormalization silently absorbs the corruption.
#[test]
#[should_panic(expected = "LS3DF invariant violated at Gen_dens")]
fn corrupted_fragment_density_trips_charge_check() {
    let mut calc = small_calc();
    for i in 0..4 {
        calc.scale_fragment_psi(i, 10.0);
    }
    let _ = calc.gen_dens();
}

/// A NaN injected into the global input potential must be reported by the
/// first step that consumes it — Gen_VF — not discovered (or worse,
/// averaged away) steps later.
#[test]
#[should_panic(expected = "LS3DF invariant violated at Gen_VF")]
fn injected_nan_is_reported_at_gen_vf() {
    let mut calc = small_calc();
    let mut v = calc.v_in().clone();
    v.as_mut_slice()[17] = f64::NAN;
    calc.set_v_in(v);
    let _ = calc.gen_vf();
}

/// The check layer must be compiled into test builds, otherwise the two
/// tests above would pass vacuously. (Indirection via a runtime value so
/// the assertion is not constant-folded.)
#[test]
fn check_layer_active_in_test_builds() {
    let enabled = [false, ls3df_core::check::ENABLED];
    assert!(
        enabled[1],
        "debug/test builds must compile the invariant layer in"
    );
}
