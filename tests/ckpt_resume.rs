//! Kill-and-resume determinism: a run checkpointed at iteration k and
//! resumed in a *fresh process* must produce a final density bit-identical
//! to the run that was never interrupted — under `LS3DF_THREADS=1` and
//! full host parallelism. The pool is configured once per process, so
//! each leg runs in a subprocess (this test binary re-execed with
//! `--exact <child test>`), which also makes the "kill" real: the resumed
//! process shares no memory with the one that wrote the snapshot.

use ls3df::core::{Ls3df, Ls3dfOptions, Passivation};
use ls3df::{CheckpointConfig, CheckpointPolicy};
use ls3df_atoms::{Atom, Species, Structure};
use ls3df_pseudo::PseudoTable;
use std::path::{Path, PathBuf};

/// Deep-well simple-cubic model crystal (see tests/ls3df_pipeline.rs).
fn model_crystal(m: [usize; 3], a: f64) -> Structure {
    let mut atoms = Vec::new();
    for k in 0..m[2] {
        for j in 0..m[1] {
            for i in 0..m[0] {
                atoms.push(Atom {
                    species: Species::Zn,
                    pos: [
                        (i as f64 + 0.5) * a,
                        (j as f64 + 0.5) * a,
                        (k as f64 + 0.5) * a,
                    ],
                });
            }
        }
    }
    Structure::new([m[0] as f64 * a, m[1] as f64 * a, m[2] as f64 * a], atoms)
}

const MAX_SCF: usize = 4;
/// The iteration the "kill" happens after (resume picks up at 3).
const KILL_AFTER: usize = 2;

fn small_opts() -> Ls3dfOptions {
    Ls3dfOptions {
        ecut: 1.5,
        piece_pts: [6, 6, 6],
        buffer_pts: [2, 2, 2],
        passivation: Passivation::WallOnly,
        wall_height: 1.5,
        n_extra_bands: 2,
        cg_steps: 4,
        initial_cg_steps: 6,
        fragment_tol: 1e-9,
        max_scf: MAX_SCF,
        tol: 1e-6, // unreachable in 4 iterations: both legs run the full cap
        pseudo: PseudoTable::deep_well(2.0, 0.8),
        ..Default::default()
    }
}

fn build(ckpt: Option<CheckpointConfig>, resume: Option<&Path>) -> Ls3df {
    let s = model_crystal([2, 2, 2], 6.5);
    let mut b = Ls3df::builder(&s)
        .fragments([2, 2, 2])
        .options(small_opts());
    if let Some(cfg) = ckpt {
        b = b.checkpoint(cfg);
    }
    if let Some(path) = resume {
        b = b.resume_from(path);
    }
    b.build().expect("valid test geometry")
}

/// FNV-1a over the raw f64 bit patterns of the run's outputs: any
/// single-bit divergence between the two legs changes it.
fn run_digest(res: &ls3df::core::Ls3dfResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bits: u64| {
        for byte in bits.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &x in res.rho.as_slice() {
        eat(x.to_bits());
    }
    for &x in res.v_eff.as_slice() {
        eat(x.to_bits());
    }
    for step in &res.history {
        eat(step.iteration as u64);
        eat(step.dv_integral.to_bits());
        eat(step.worst_residual.to_bits());
    }
    h
}

/// Child leg A: the uninterrupted reference run, checkpointing every
/// iteration into `LS3DF_CKPT_DIR` (so the parent can pick the
/// iteration-`KILL_AFTER` snapshot for leg B).
#[test]
fn ckpt_child_full() {
    if std::env::var("LS3DF_CKPT_CHILD").as_deref() != Ok("full") {
        return;
    }
    let dir = PathBuf::from(std::env::var("LS3DF_CKPT_DIR").expect("LS3DF_CKPT_DIR"));
    let mut calc = build(
        Some(CheckpointConfig {
            dir,
            policy: CheckpointPolicy::EveryN(1),
            keep_last: MAX_SCF + 1, // keep them all; the parent picks one
        }),
        None,
    );
    let res = calc.scf();
    println!("LS3DF_DIGEST={:016x}", run_digest(&res));
}

/// Child leg B: a fresh process resuming from the snapshot the parent
/// chose, running to the same iteration cap.
#[test]
fn ckpt_child_resume() {
    if std::env::var("LS3DF_CKPT_CHILD").as_deref() != Ok("resume") {
        return;
    }
    let snap = PathBuf::from(std::env::var("LS3DF_CKPT_SNAPSHOT").expect("LS3DF_CKPT_SNAPSHOT"));
    let mut calc = build(None, Some(&snap));
    let res = calc.scf();
    println!("LS3DF_DIGEST={:016x}", run_digest(&res));
}

fn run_child(child: &str, threads: &str, dir: &Path, snapshot: Option<&Path>) -> String {
    let exe = std::env::current_exe().expect("test binary path");
    let test_name = match child {
        "full" => "ckpt_child_full",
        _ => "ckpt_child_resume",
    };
    let mut cmd = std::process::Command::new(exe);
    cmd.args(["--exact", test_name, "--nocapture"])
        .env("LS3DF_CKPT_CHILD", child)
        .env("LS3DF_THREADS", threads)
        .env("LS3DF_CKPT_DIR", dir);
    if let Some(s) = snapshot {
        cmd.env("LS3DF_CKPT_SNAPSHOT", s);
    }
    let out = cmd.output().expect("spawn checkpoint child");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        out.status.success(),
        "{child} child (LS3DF_THREADS={threads}) failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    stdout
        .lines()
        .find_map(|l| l.split("LS3DF_DIGEST=").nth(1))
        .map(str::trim)
        .unwrap_or_else(|| panic!("no digest line from {child} child:\n{stdout}"))
        .to_string()
}

/// The determinism contract of ISSUE/DESIGN §7: checkpoint + kill +
/// resume must be bit-identical to never having stopped, at 1 thread and
/// at full host parallelism.
#[test]
fn kill_and_resume_is_bit_identical() {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .to_string();
    for threads in ["1", max.as_str()] {
        let dir = std::env::temp_dir().join(format!(
            "ls3df-ckpt-resume-{}-t{threads}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let full = run_child("full", threads, &dir, None);
        let snap = dir.join(format!("scf-{KILL_AFTER:06}.ls3df"));
        assert!(
            snap.exists(),
            "full run left no iteration-{KILL_AFTER} snapshot in {}",
            dir.display()
        );
        let resumed = run_child("resume", threads, &dir, Some(&snap));
        assert_eq!(
            resumed, full,
            "resume from iteration {KILL_AFTER} diverged from the uninterrupted \
             run at LS3DF_THREADS={threads}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Rotation: `keep_last` bounds the snapshot directory no matter how many
/// iterations run, and the newest snapshot is always the survivor.
#[test]
fn rotation_keeps_only_the_newest_snapshots() {
    let dir = std::env::temp_dir().join(format!("ls3df-ckpt-rotate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut calc = build(
        Some(CheckpointConfig {
            dir: dir.clone(),
            policy: CheckpointPolicy::EveryN(1),
            keep_last: 2,
        }),
        None,
    );
    let _ = calc.scf();
    let kept = ls3df::ckpt::list_snapshots(&dir).expect("list snapshots");
    let iterations: Vec<usize> = kept.iter().map(|(i, _)| *i).collect();
    assert_eq!(
        iterations,
        vec![MAX_SCF - 1, MAX_SCF],
        "keep_last=2 must leave exactly the two newest snapshots"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
