//! Cross-crate integration tests of the fragment geometry against the
//! paper's combinatorial claims, at paper-like scales (pure geometry — no
//! solver, so these run everywhere).

use ls3df::core::{Fragment, FragmentGrid};
use ls3df_grid::Grid3;

#[test]
fn partition_of_unity_at_paper_scales() {
    // The paper's production decompositions (grid points reduced; the
    // partition is independent of the per-piece resolution).
    for m in [[3usize, 3, 3], [4, 4, 4], [8, 6, 9], [8, 8, 8]] {
        let grid = Grid3::new(
            [m[0] * 2, m[1] * 2, m[2] * 2],
            [m[0] as f64, m[1] as f64, m[2] as f64],
        );
        let fg = FragmentGrid::new(m, &grid, [1, 1, 1]).expect("valid decomposition");
        assert_eq!(
            fg.partition_of_unity(&grid),
            0.0,
            "partition of unity must be exact for m = {m:?}"
        );
        assert_eq!(fg.n_fragments(), 8 * m[0] * m[1] * m[2]);
    }
}

#[test]
fn fragment_census_matches_paper_counts() {
    // 12×12×12 → 13,824 fragments (one per atom in the paper's systems,
    // since pieces are 8-atom cells and there are 8 fragments per corner).
    let m = [12usize, 12, 12];
    let grid = Grid3::new([24, 24, 24], [12.0, 12.0, 12.0]);
    let fg = FragmentGrid::new(m, &grid, [1, 1, 1]).expect("valid decomposition");
    assert_eq!(fg.n_fragments(), 13_824);

    // Census by type: 1/8 of fragments for each of the 8 size signatures.
    let frags = fg.fragments();
    for size in [[1usize, 1, 1], [2, 1, 1], [2, 2, 1], [2, 2, 2]] {
        let count = frags.iter().filter(|f| f.size == size).count();
        assert_eq!(count, fg.n_corners(), "size {size:?}");
    }
}

#[test]
fn signed_volume_telescopes_to_supercell() {
    // Σ_F α_F · volume(F) = supercell volume, for any m.
    for m in [[2usize, 3, 4], [5, 5, 5]] {
        let grid = Grid3::new(
            [m[0] * 3, m[1] * 3, m[2] * 3],
            [m[0] as f64, m[1] as f64, m[2] as f64],
        );
        let fg = FragmentGrid::new(m, &grid, [1, 1, 1]).expect("valid decomposition");
        let signed: f64 = fg
            .fragments()
            .iter()
            .map(|f| f.alpha() * f.n_pieces() as f64)
            .sum();
        assert_eq!(signed, (m[0] * m[1] * m[2]) as f64);
    }
}

#[test]
fn two_dimensional_limit_matches_paper_figure_1() {
    // Paper Fig. 1 is the 2-D picture: α = +1 for 1×1 and 2×2, −1 for
    // 1×2 / 2×1. In our 3-D code the 2-D case is size_z = 2 fixed… check
    // that the sign pattern restricted to two varying dimensions matches
    // after factoring out the z contribution.
    let alpha = |s: [usize; 3]| Fragment::sign_alternating([0, 0, 0], s).alpha();
    // With s_z = 2 (sign +1), the x-y pattern is the 2-D one inverted?
    // No: α₂D(s1,s2) = α₃D(s1,s2,2).
    assert_eq!(alpha([1, 1, 2]), 1.0); // 1×1 → +1 ✓
    assert_eq!(alpha([2, 2, 2]), 1.0); // 2×2 → +1 ✓
    assert_eq!(alpha([1, 2, 2]), -1.0); // 1×2 → −1 ✓
    assert_eq!(alpha([2, 1, 2]), -1.0); // 2×1 → −1 ✓
}

#[test]
fn buffers_do_not_change_region_bookkeeping() {
    let m = [3usize, 3, 3];
    let grid = Grid3::new([12, 12, 12], [6.0, 6.0, 6.0]);
    for buffer in [0usize, 1, 2] {
        let fg = FragmentGrid::new(m, &grid, [buffer; 3]).expect("valid decomposition");
        assert_eq!(fg.partition_of_unity(&grid), 0.0);
        let f = Fragment::sign_alternating([2, 2, 2], [2, 2, 2]);
        // Region is buffer-independent; the box grows by 2·buffer.
        assert_eq!(fg.region_dims(&f), [8, 8, 8]);
        assert_eq!(fg.box_grid(&f).dims, [8 + 2 * buffer; 3]);
    }
}
