//! Integration test of the complete performance-reproduction pipeline —
//! the quantitative claims the paper's abstract makes, checked end to end
//! through the facade crate.

use ls3df::hpc::{
    crossover_atoms, crossover_sweep, fig3_core_counts, model_row, paper_table1, speed_ratio,
    strong_scaling, DirectCodeModel, Machine, MachineSpec, Problem,
};

#[test]
fn abstract_headline_numbers() {
    // "we were able to achieve 60.3 Tflop/s … on 30,720 Cray XT4 processor
    //  cores" and "107.5 Tflop/s on 131,072 cores, or 24.2% of peak".
    let jaguar_row = paper_table1()
        .into_iter()
        .find(|r| r.machine == Machine::Jaguar && r.cores == 30_720 && r.np == 20)
        .unwrap();
    let m = model_row(&jaguar_row);
    assert!(
        (m.tflops - 60.3).abs() < 4.0,
        "Jaguar headline: {}",
        m.tflops
    );

    let intrepid_row = paper_table1()
        .into_iter()
        .find(|r| r.cores == 131_072)
        .unwrap();
    let m = model_row(&intrepid_row);
    assert!(
        (m.tflops - 107.5).abs() < 4.0,
        "Intrepid headline: {}",
        m.tflops
    );
    assert!(
        (m.pct_peak - 0.242).abs() < 0.01,
        "Intrepid %peak: {}",
        m.pct_peak
    );
}

#[test]
fn abstract_four_hundred_times_claim() {
    // "Our 13,824-atom ZnTeO alloy calculation runs 400 times faster than
    //  a direct DFT calculation, even presuming that the direct DFT
    //  calculation can scale well up to 17,280 processor cores."
    let machine = MachineSpec::franklin();
    let direct = DirectCodeModel::paratec();
    let ratio = speed_ratio(&machine, &direct, &Problem::new(12, 12, 12), 17_280, 10);
    assert!((ratio - 400.0).abs() < 80.0, "speed ratio = {ratio}");
}

#[test]
fn almost_perfect_parallelization_claim() {
    // "This leads to almost perfect parallelization on over one hundred
    //  thousand processors": the PEtot_F phase keeps >90% parallel
    //  efficiency across the paper's strong-scaling range.
    let machine = MachineSpec::franklin();
    let problem = Problem::new(8, 6, 9);
    let (points, _, fit_petot) =
        strong_scaling(&machine, &problem, 40, &fig3_core_counts()).unwrap();
    let last = points.last().unwrap();
    let ideal = last.cores as f64 / points[0].cores as f64;
    assert!(last.speedup_petot / ideal > 0.9);
    // And the fitted serial fraction is tiny (paper: ~1/362,000).
    assert!(fit_petot.alpha < 1e-4, "α = {}", fit_petot.alpha);
}

#[test]
fn crossover_pipeline_runs_end_to_end() {
    let machine = MachineSpec::franklin();
    let direct = DirectCodeModel::paratec();
    let sweep = crossover_sweep(&machine, &direct, 17_280, 40, &[2, 3, 4, 6, 8, 12, 16]);
    assert_eq!(sweep.len(), 7);
    // LS3DF times grow linearly once every group has work (fragments ≥
    // groups, i.e. from m = 6 up at Np = 40 on 17,280 cores); the direct
    // code grows superlinearly everywhere.
    let base = sweep.iter().find(|p| p.atoms == 1728).unwrap();
    let last = sweep.last().unwrap();
    let t_ls_ratio = last.t_ls3df / base.t_ls3df;
    let atoms_ratio = last.atoms as f64 / base.atoms as f64;
    assert!(
        (t_ls_ratio / atoms_ratio - 1.0).abs() < 0.3,
        "LS3DF not linear: {t_ls_ratio} vs {atoms_ratio}"
    );
    let t_d_ratio = last.t_direct / base.t_direct;
    assert!(t_d_ratio > 10.0 * atoms_ratio, "direct not superlinear");
    assert!(crossover_atoms(&sweep).is_some());
}

#[test]
fn every_paper_row_is_modeled_within_one_point() {
    for row in paper_table1() {
        let m = model_row(&row);
        assert!(
            (m.pct_peak - row.paper_pct_peak).abs() < 0.01,
            "{:?} {:?} cores={}: model {:.1}% vs paper {:.1}%",
            row.machine,
            row.m,
            row.cores,
            m.pct_peak * 100.0,
            row.paper_pct_peak * 100.0
        );
    }
}
