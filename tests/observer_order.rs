//! Observer hook-ordering contract of [`Ls3df::scf_with`]:
//!
//! * `on_stage` fires for all four stages (Gen_VF, PEtot_F, Gen_dens,
//!   GENPOT, in that order) before the iteration's `on_step`;
//! * `on_converged` fires at most once, and only after the converging
//!   step's `on_step`;
//! * fault hooks (`on_fragment_retry`, `on_fragment_quarantined`) fire
//!   in fragment order within an iteration, regardless of how the pool
//!   scheduled the parallel solves.
//!
//! Downstream observers (TraceObserver, bench printers, future tracing
//! backends) bake these assumptions in; this test pins them.

use ls3df::core::{Ls3df, Ls3dfOptions, Ls3dfStep, Passivation};
use ls3df::{FragmentFault, InjectedFault, QuarantineRecord, ScfObserver, ScfStage};
use ls3df_atoms::{Atom, Species, Structure};
use ls3df_pseudo::PseudoTable;

fn model_crystal(m: [usize; 3], a: f64) -> Structure {
    let mut atoms = Vec::new();
    for k in 0..m[2] {
        for j in 0..m[1] {
            for i in 0..m[0] {
                atoms.push(Atom {
                    species: Species::Zn,
                    pos: [
                        (i as f64 + 0.5) * a,
                        (j as f64 + 0.5) * a,
                        (k as f64 + 0.5) * a,
                    ],
                });
            }
        }
    }
    Structure::new([m[0] as f64 * a, m[1] as f64 * a, m[2] as f64 * a], atoms)
}

fn small_calc(max_scf: usize, tol: f64) -> Ls3df {
    let s = model_crystal([2, 2, 2], 6.5);
    let opts = Ls3dfOptions {
        ecut: 1.5,
        piece_pts: [6, 6, 6],
        buffer_pts: [2, 2, 2],
        passivation: Passivation::WallOnly,
        wall_height: 1.5,
        n_extra_bands: 2,
        cg_steps: 4,
        initial_cg_steps: 8,
        fragment_tol: 1e-9,
        max_scf,
        tol,
        pseudo: PseudoTable::deep_well(2.0, 0.8),
        ..Default::default()
    };
    Ls3df::builder(&s)
        .fragments([2, 2, 2])
        .options(opts)
        .build()
        .expect("valid test geometry")
}

/// Every observer event, in arrival order.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Event {
    Stage(usize, &'static str),
    Step(usize),
    Converged(usize),
    Retry(usize, usize),      // (iteration, fragment)
    Quarantine(usize, usize), // (iteration, fragment)
}

#[derive(Default)]
struct OrderLog {
    events: Vec<Event>,
}

impl ScfObserver for &mut OrderLog {
    fn on_step(&mut self, step: &Ls3dfStep) {
        self.events.push(Event::Step(step.iteration));
    }
    fn on_stage(&mut self, iteration: usize, stage: ScfStage, _seconds: f64) {
        self.events.push(Event::Stage(iteration, stage.name()));
    }
    fn on_converged(&mut self, step: &Ls3dfStep) {
        self.events.push(Event::Converged(step.iteration));
    }
    fn on_fragment_retry(&mut self, iteration: usize, fault: &FragmentFault) {
        self.events.push(Event::Retry(iteration, fault.fragment));
    }
    fn on_fragment_quarantined(&mut self, iteration: usize, record: &QuarantineRecord) {
        self.events
            .push(Event::Quarantine(iteration, record.fragment));
    }
}

/// All four stages fire, in paper order, before the iteration's step
/// event — for every iteration.
#[test]
fn stages_fire_in_order_before_step() {
    let mut calc = small_calc(3, 1e-12);
    let mut log = OrderLog::default();
    let _res = calc.scf_with(&mut log);

    for iteration in 1..=3 {
        let expect = [
            Event::Stage(iteration, "Gen_VF"),
            Event::Stage(iteration, "PEtot_F"),
            Event::Stage(iteration, "Gen_dens"),
            Event::Stage(iteration, "GENPOT"),
            Event::Step(iteration),
        ];
        let got: Vec<&Event> = log
            .events
            .iter()
            .filter(|e| {
                matches!(e,
                    Event::Stage(i, _) | Event::Step(i) if *i == iteration)
            })
            .collect();
        assert_eq!(
            got,
            expect.iter().collect::<Vec<_>>(),
            "iteration {iteration} event order"
        );
    }
    assert!(
        !log.events.iter().any(|e| matches!(e, Event::Converged(_))),
        "tol 1e-12 must not converge in 3 iterations"
    );
}

/// `on_converged` fires exactly once on a converging run, after that
/// step's `on_step`, and the loop stops there.
#[test]
fn converged_fires_at_most_once_after_its_step() {
    // Huge tolerance: iteration 1 converges immediately.
    let mut calc = small_calc(10, 1e9);
    let mut log = OrderLog::default();
    let res = calc.scf_with(&mut log);
    assert!(res.converged);

    let converged: Vec<usize> = log
        .events
        .iter()
        .enumerate()
        .filter_map(|(pos, e)| matches!(e, Event::Converged(_)).then_some(pos))
        .collect();
    assert_eq!(converged.len(), 1, "on_converged must fire exactly once");
    let step_pos = log
        .events
        .iter()
        .position(|e| matches!(e, Event::Step(1)))
        .expect("step event");
    assert!(
        converged[0] > step_pos,
        "on_converged must fire after the converging on_step"
    );
    // The run stopped at iteration 1: no events from a second iteration.
    assert!(!log.events.contains(&Event::Step(2)));
}

/// Injected faults on out-of-order fragments surface through the retry
/// hook in fragment order, and a fully failing fragment's quarantine
/// event follows the retries.
#[test]
fn fault_hooks_fire_in_fragment_order() {
    let mut calc = small_calc(1, 1e-12);
    // One recoverable fault each on fragments 5 and 1 (injection order
    // deliberately reversed vs fragment order), and an unrecoverable
    // fragment 3 (every ladder rung fails → quarantine).
    calc.inject_fragment_fault(5, InjectedFault::SolverError, 1);
    calc.inject_fragment_fault(1, InjectedFault::Panic, 1);
    calc.inject_fragment_fault(3, InjectedFault::SolverError, 100);
    let mut log = OrderLog::default();
    let res = calc.scf_with(&mut log);
    assert_eq!(res.quarantined.len(), 1);

    let retry_fragments: Vec<usize> = log
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Retry(_, fragment) => Some(*fragment),
            _ => None,
        })
        .collect();
    let mut sorted = retry_fragments.clone();
    sorted.sort_unstable();
    assert_eq!(
        retry_fragments, sorted,
        "retry events must arrive in fragment order"
    );
    assert!(retry_fragments.contains(&1) && retry_fragments.contains(&5));
    // Fragment 3 burned the whole ladder: several retries then quarantine.
    assert!(retry_fragments.iter().filter(|&&f| f == 3).count() > 1);
    let quarantine_pos = log
        .events
        .iter()
        .position(|e| matches!(e, Event::Quarantine(1, 3)))
        .expect("quarantine event");
    let last_retry = log
        .events
        .iter()
        .rposition(|e| matches!(e, Event::Retry(_, _)))
        .expect("retry events");
    assert!(
        quarantine_pos > last_retry,
        "quarantines replay after all retries"
    );
}
