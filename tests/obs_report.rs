//! The `obs-report` CI gate: one small instrumented SCF run must emit a
//! schema-valid `ls3df-run-report` JSON document, and the same code
//! compiled *without* the `obs` feature must show the no-op contract
//! (zero-sized span guards, empty span/counter sections, reports still
//! schema-valid). The CI step runs this test file twice — once with
//! `--features obs` and once without — so both halves stay compiled and
//! exercised.

use ls3df::core::{Ls3df, Ls3dfOptions, Passivation, TraceObserver};
use ls3df::obs::Json;
#[cfg(feature = "obs")]
use ls3df::obs::MachineRef;
use ls3df::pseudo::PseudoTable;
use ls3df_atoms::{Atom, Species, Structure};
use std::sync::{Mutex, MutexGuard, OnceLock};

#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: ls3df::alloc_count::CountingAllocator = ls3df::alloc_count::CountingAllocator;

/// Serializes tests that touch the process-global span/counter sinks
/// (harvest in one test must not steal the spans of another).
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn model_crystal(m: [usize; 3], a: f64) -> Structure {
    let mut atoms = Vec::new();
    for k in 0..m[2] {
        for j in 0..m[1] {
            for i in 0..m[0] {
                atoms.push(Atom {
                    species: Species::Zn,
                    pos: [
                        (i as f64 + 0.5) * a,
                        (j as f64 + 0.5) * a,
                        (k as f64 + 0.5) * a,
                    ],
                });
            }
        }
    }
    Structure::new([m[0] as f64 * a, m[1] as f64 * a, m[2] as f64 * a], atoms)
}

fn small_calc(max_scf: usize) -> Ls3df {
    let s = model_crystal([2, 2, 2], 6.5);
    let opts = Ls3dfOptions {
        ecut: 1.5,
        piece_pts: [6, 6, 6],
        buffer_pts: [2, 2, 2],
        passivation: Passivation::WallOnly,
        wall_height: 1.5,
        n_extra_bands: 2,
        cg_steps: 6,
        initial_cg_steps: 12,
        fragment_tol: 1e-9,
        max_scf,
        tol: 1e-12, // never converges early: fixed iteration count
        pseudo: PseudoTable::deep_well(2.0, 0.8),
        ..Default::default()
    };
    Ls3df::builder(&s)
        .fragments([2, 2, 2])
        .options(opts)
        .build()
        .expect("valid test geometry")
}

#[cfg(feature = "obs")]
fn counter(report: &ls3df::obs::Report, name: &str) -> u64 {
    report
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |&(_, v)| v)
}

/// With collection on: run a small SCF under a [`TraceObserver`], write
/// the report plus a chrome trace, and check schema validity, wall-time
/// attribution, counter plausibility and the trace file shape.
#[cfg(feature = "obs")]
#[test]
fn instrumented_run_emits_schema_valid_report() {
    let _guard = obs_lock();
    const { assert!(ls3df::obs::ENABLED, "obs feature must enable collection") };

    let dir = std::env::temp_dir().join(format!("ls3df_obs_report_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bench_path = dir.join("BENCH_obs_test.json");
    let trace_path = dir.join("TRACE_obs_test.json");

    let mut calc = small_calc(2);
    let n_frags = calc.n_fragments();
    let mut tracer = TraceObserver::new("obs_report_test")
        .with_machine(MachineRef {
            name: "testbox".to_string(),
            peak_gflops: 100.0,
        })
        .with_trace_file(&trace_path);
    let res = calc.scf_with(&mut tracer);
    assert_eq!(res.history.len(), 2);
    let report = tracer.finish();
    report.write(&bench_path).expect("report write");

    // Round-trip through the schema validator, from disk.
    let text = std::fs::read_to_string(&bench_path).expect("report readback");
    let doc = ls3df::obs::report::validate_report_str(&text).expect("schema-valid report");
    assert_eq!(doc.get("obs_enabled").and_then(Json::as_bool), Some(true));

    // ≥95% of the wall clock must be attributed to named spans (the
    // scf_iter roots cover the whole loop body; only setup glue between
    // TraceObserver::new and the first iteration falls outside).
    let attribution = report.attribution.as_ref().expect("attribution");
    assert!(
        attribution.fraction >= 0.95,
        "span attribution {:.3} below 0.95",
        attribution.fraction
    );

    // Flop accounting: the FFT counters ran, so the report rates itself.
    let flops = report.flops.as_ref().expect("flop report");
    assert!(flops.estimated_gflop > 0.0);
    assert!(flops.percent_of_peak.is_some());

    // Counter plausibility for 2 iterations × n_frags fragments.
    assert_eq!(counter(&report, "fragment_solves"), 2 * n_frags as u64);
    assert!(counter(&report, "cg_band_iterations") > 0);
    assert!(counter(&report, "hartree_solves") >= 2);
    assert_eq!(counter(&report, "mixer_applies"), 2);
    assert!(counter(&report, "fft_flops") > 0);

    // Span hierarchy: driver stages nest under scf_iter; fragment spans
    // exist for all 8 fragments.
    assert!(report.spans.iter().any(|s| s.path == "scf_iter/petot_f"));
    assert_eq!(report.fragments.len(), n_frags);
    assert!(report.fragments.iter().all(|f| f.calls == 2));

    // The chrome trace is valid JSON: an array of trace events with at
    // least one "X" (complete) event per recorded span kind.
    let trace_text = std::fs::read_to_string(&trace_path).expect("trace readback");
    let trace = Json::parse(&trace_text).expect("trace parses");
    let events = trace.as_array().expect("trace event array");
    assert!(events
        .iter()
        .any(|e| e.get("ph").and_then(Json::as_str) == Some("X")));

    std::fs::remove_dir_all(&dir).ok();
}

/// Without the feature: spans are zero-sized no-ops, the registries stay
/// empty, and reports still validate (with `obs_enabled: false`).
#[cfg(not(feature = "obs"))]
#[test]
fn disabled_build_is_noop() {
    let _guard = obs_lock();
    const { assert!(!ls3df::obs::ENABLED) };
    // The overhead contract: a span guard occupies no memory (and has no
    // Drop), so `span!` sites compile to nothing.
    assert_eq!(size_of::<ls3df::obs::span::SpanGuard>(), 0);

    // Counter adds are invisible.
    ls3df::obs::counter_add(ls3df::obs::Counter::FftFlops, 123);
    let data = ls3df::obs::harvest();
    assert!(data.spans.is_empty());
    assert!(!data.counters.iter().any(|(n, _)| *n == "fft_flops"));

    // A real run still produces a schema-valid report, flagged disabled,
    // with stage timings (always-on Stopwatch plumbing) but no spans.
    let mut calc = small_calc(1);
    let mut tracer = TraceObserver::new("obs_off_test");
    let _res = calc.scf_with(&mut tracer);
    let report = tracer.finish();
    assert!(!report.obs_enabled);
    assert!(report.spans.is_empty());
    assert!(report.attribution.is_none() && report.flops.is_none());
    assert_eq!(report.stages.len(), 4);
    assert!(report.stages.iter().all(|s| s.calls == 1));
    let text = report.to_json().render();
    let doc = ls3df::obs::report::validate_report_str(&text).expect("schema-valid report");
    assert_eq!(doc.get("obs_enabled").and_then(Json::as_bool), Some(false));
}

/// The `alloc-count` allocator totals flow into the metrics registry via
/// the installable probe, so run reports can carry an `"allocations"`
/// counter next to the flop counters.
#[cfg(feature = "alloc-count")]
#[test]
fn alloc_probe_feeds_registry() {
    let _guard = obs_lock();
    ls3df::alloc_count::install_metrics_probe();
    let v: Vec<u64> = vec![1, 2, 3];
    assert_eq!(v.len(), 3);
    let data = ls3df::obs::harvest();
    let alloc = data.counters.iter().find(|(n, _)| *n == "allocations");
    assert!(
        alloc.is_some_and(|&(_, count)| count > 0),
        "allocations counter missing from snapshot: {:?}",
        data.counters
    );
}
