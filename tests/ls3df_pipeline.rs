//! End-to-end integration tests of the LS3DF pipeline on a small gapped
//! model crystal (single-core budget: a couple of minutes total).

use ls3df::core::{Ls3df, Ls3dfOptions, Passivation};
use ls3df::pw::Mixer;
use ls3df_atoms::{Atom, Species, Structure};
use ls3df_pseudo::PseudoTable;

/// Deep-well simple-cubic model crystal (He-like closed-shell atoms):
/// gapped, cheap, and chemistry-free — ideal for validating the fragment
/// machinery itself.
fn model_crystal(m: [usize; 3], a: f64) -> Structure {
    let mut atoms = Vec::new();
    for k in 0..m[2] {
        for j in 0..m[1] {
            for i in 0..m[0] {
                atoms.push(Atom {
                    species: Species::Zn,
                    pos: [
                        (i as f64 + 0.5) * a,
                        (j as f64 + 0.5) * a,
                        (k as f64 + 0.5) * a,
                    ],
                });
            }
        }
    }
    Structure::new([m[0] as f64 * a, m[1] as f64 * a, m[2] as f64 * a], atoms)
}

/// All pipeline tests use the same 2×2×2 decomposition.
fn build_calc(s: &Structure, opts: Ls3dfOptions) -> Ls3df {
    Ls3df::builder(s)
        .fragments([2, 2, 2])
        .options(opts)
        .build()
        .expect("valid test geometry")
}

fn small_opts(table: PseudoTable) -> Ls3dfOptions {
    Ls3dfOptions {
        ecut: 1.5,
        piece_pts: [8, 8, 8],
        buffer_pts: [3, 3, 3],
        passivation: Passivation::WallOnly,
        wall_height: 1.5,
        n_extra_bands: 2,
        cg_steps: 6,
        initial_cg_steps: 10, // the gapped toy doesn't need a deep burn-in
        fragment_tol: 1e-9,   // step-limited (tests watch residual trends)
        mixer: Mixer::Kerker {
            alpha: 0.6,
            q0: 0.8,
        },
        max_scf: 10,
        tol: 1e-4,
        pseudo: table,
        ..Default::default()
    }
}

#[test]
fn ls3df_outer_loop_runs_and_conserves_charge() {
    let s = model_crystal([2, 2, 2], 6.5);
    let table = PseudoTable::deep_well(2.0, 0.8);
    let mut calc = build_calc(&s, small_opts(table));
    assert_eq!(calc.n_fragments(), 64);
    let res = calc.scf();
    assert_eq!(res.history.len(), 10);
    // Patched density carries exactly the right charge every iteration
    // (Gen_dens renormalizes; the pre-normalization patch must be close).
    assert!((res.rho.integrate() - s.num_electrons()).abs() < 1e-8);
    // Density is physically sane: non-negative up to patching noise.
    assert!(res.rho.min() > -0.05 * res.rho.max());
    // The SCF makes progress: final ΔV well below the first iteration's.
    let first = res.history.first().unwrap().dv_integral;
    let last = res.history.last().unwrap().dv_integral;
    assert!(
        last < 0.5 * first,
        "∫|ΔV| must decrease: first {first:.3e}, last {last:.3e}"
    );
}

#[test]
fn gen_vf_extracts_global_potential_plus_boundary_terms() {
    // Each fragment potential must equal the global input potential on the
    // fragment's interior (away from the wall/passivation boundary layer).
    let s = model_crystal([2, 2, 2], 6.5);
    let table = PseudoTable::deep_well(2.0, 0.8);
    let calc = build_calc(&s, small_opts(table));
    let vfs = calc.gen_vf();
    let v_in = calc.v_in();
    // Fragment 0 is corner (0,0,0); find the 1×1×1 one by box size.
    let fg = &calc.fg;
    let fragments = fg.fragments();
    for (f, vf) in fragments.iter().zip(&vfs) {
        if f.size != [1, 1, 1] || f.corner != [0, 0, 0] {
            continue;
        }
        let origin = fg.box_origin(f);
        let off = fg.region_offset_in_box();
        let rd = fg.region_dims(f);
        // Compare on the region interior (2 points in from the region
        // edge, clear of ΔV_F).
        for dz in 2..rd[2] - 2 {
            for dy in 2..rd[1] - 2 {
                for dx in 2..rd[0] - 2 {
                    let frag_v = vf.at(off[0] + dx, off[1] + dy, off[2] + dz);
                    let glob_v = v_in.at_wrapped(
                        origin[0] + (off[0] + dx) as i64,
                        origin[1] + (off[1] + dy) as i64,
                        origin[2] + (off[2] + dz) as i64,
                    );
                    assert!(
                        (frag_v - glob_v).abs() < 1e-10,
                        "Gen_VF mismatch at ({dx},{dy},{dz}): {frag_v} vs {glob_v}"
                    );
                }
            }
        }
    }
}

#[test]
fn fragment_residuals_improve_across_outer_iterations() {
    // Warm-started fragment wavefunctions must improve from one outer
    // iteration to the next even with a fixed small CG budget.
    let s = model_crystal([2, 2, 2], 6.5);
    let table = PseudoTable::deep_well(2.0, 0.8);
    let mut opts = small_opts(table);
    opts.max_scf = 6;
    let mut calc = build_calc(&s, opts);
    let res = calc.scf();
    let first = res.history.first().unwrap().worst_residual;
    let last = res.history.last().unwrap().worst_residual;
    assert!(
        last < first,
        "residual should improve with warm starts: {first:.2e} → {last:.2e}"
    );
}

#[test]
fn patched_density_inherits_crystal_periodicity() {
    // Every piece of the ideal model crystal is identical, so every
    // fragment of a given type is identical too — the patched density
    // must be exactly periodic under piece translations. This is a sharp
    // consistency test of Gen_VF/Gen_dens bookkeeping (an off-by-one in
    // any origin would break it).
    let s = model_crystal([2, 2, 2], 6.5);
    let table = PseudoTable::deep_well(2.0, 0.8);
    let mut opts = small_opts(table);
    opts.max_scf = 4;
    let mut calc = build_calc(&s, opts);
    let res = calc.scf();
    let rho = &res.rho;
    let g = rho.grid().clone();
    let piece = 8i64; // grid points per piece
    let scale = rho.max_abs().max(1e-300);
    for iz in 0..g.dims[2] {
        for iy in 0..g.dims[1] {
            for ix in 0..g.dims[0] {
                let a = rho.at(ix, iy, iz);
                let b = rho.at_wrapped(ix as i64 + piece, iy as i64, iz as i64);
                let c = rho.at_wrapped(ix as i64, iy as i64 + piece, iz as i64 + piece);
                assert!(
                    (a - b).abs() / scale < 1e-6 && (a - c).abs() / scale < 1e-6,
                    "periodicity broken at ({ix},{iy},{iz}): {a} vs {b} vs {c}"
                );
            }
        }
    }
}

#[test]
fn timings_are_recorded_and_petot_dominates() {
    // The paper's premise: PEtot_F dominates the iteration (so the
    // fragment fan-out is where the parallelism matters).
    let s = model_crystal([2, 2, 2], 6.5);
    let table = PseudoTable::deep_well(2.0, 0.8);
    let mut opts = small_opts(table);
    opts.max_scf = 2;
    let mut calc = build_calc(&s, opts);
    let res = calc.scf();
    for step in &res.history {
        let t = step.timings;
        assert!(t.petot_f > 0.0);
        assert!(
            t.petot_f > t.gen_vf + t.gen_dens,
            "PEtot_F ({:.3}s) must dominate the patching steps ({:.3}s + {:.3}s)",
            t.petot_f,
            t.gen_vf,
            t.gen_dens
        );
    }
}

/// Digest the physically meaningful outputs of a run down to one number so
/// the thread-matrix test can compare runs across subprocesses. FNV-1a
/// over the raw f64 bit patterns: any single-bit divergence changes it.
fn run_digest(res: &ls3df::core::Ls3dfResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bits: u64| {
        for byte in bits.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &x in res.rho.as_slice() {
        eat(x.to_bits());
    }
    for step in &res.history {
        eat(step.dv_integral.to_bits());
        eat(step.worst_residual.to_bits());
    }
    h
}

/// Child half of `densities_bit_identical_across_thread_counts`. Does
/// nothing under a normal `cargo test`; when the parent re-execs this
/// test binary with `LS3DF_MATRIX_CHILD=1` it runs a short SCF under
/// whatever `LS3DF_THREADS` the parent chose and prints the digest.
#[test]
fn thread_matrix_child() {
    if std::env::var("LS3DF_MATRIX_CHILD").is_err() {
        return;
    }
    let s = model_crystal([2, 2, 2], 6.5);
    let table = PseudoTable::deep_well(2.0, 0.8);
    let mut opts = small_opts(table);
    opts.max_scf = 2;
    let mut calc = build_calc(&s, opts);
    let res = calc.scf();
    println!("LS3DF_DIGEST={:016x}", run_digest(&res));
}

/// The determinism gate from the pool redesign: the work-stealing pool
/// must be a pure performance knob. Running the same calculation at
/// `LS3DF_THREADS` ∈ {1, 2, host parallelism} must produce bit-identical
/// densities and convergence histories. The pool is configured once per
/// process, so each thread count runs in a fresh subprocess (this test
/// binary re-execed with `--exact thread_matrix_child`).
#[test]
fn densities_bit_identical_across_thread_counts() {
    let exe = std::env::current_exe().expect("test binary path");
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .to_string();
    let mut digests = Vec::new();
    for threads in ["1", "2", max.as_str()] {
        let out = std::process::Command::new(&exe)
            .args(["--exact", "thread_matrix_child", "--nocapture"])
            .env("LS3DF_MATRIX_CHILD", "1")
            .env("LS3DF_THREADS", threads)
            .output()
            .expect("spawn thread_matrix_child");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            out.status.success(),
            "child with LS3DF_THREADS={threads} failed:\n{stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        // Under `--nocapture` the harness's "test … " prefix can share the
        // line with our println, so match the marker anywhere in the line.
        let digest = stdout
            .lines()
            .find_map(|l| l.split("LS3DF_DIGEST=").nth(1))
            .map(str::trim)
            .unwrap_or_else(|| panic!("no digest line from child {threads}:\n{stdout}"))
            .to_string();
        digests.push((threads, digest));
    }
    let (_, reference) = &digests[0];
    for (threads, digest) in &digests {
        assert_eq!(
            digest, reference,
            "LS3DF_THREADS={threads} diverged from the sequential run: \
             {digest} vs {reference}"
        );
    }
}

#[test]
fn repeated_runs_produce_bit_identical_densities() {
    // LS3DF's reductions (Gen_dens fragment patching, band-block density
    // sums) use fixed-order deterministic trees, so two identical runs
    // must agree to the last bit — not merely to floating-point noise.
    let run = || {
        let s = model_crystal([2, 2, 2], 6.5);
        let table = PseudoTable::deep_well(2.0, 0.8);
        let mut opts = small_opts(table);
        opts.max_scf = 2;
        let mut calc = build_calc(&s, opts);
        calc.scf()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.rho.as_slice().len(), b.rho.as_slice().len());
    let diverging = a
        .rho
        .as_slice()
        .iter()
        .zip(b.rho.as_slice())
        .filter(|(x, y)| x.to_bits() != y.to_bits())
        .count();
    assert_eq!(
        diverging, 0,
        "{diverging} grid points differ between identical runs"
    );
    let dv_a = a.history.last().unwrap().dv_integral;
    let dv_b = b.history.last().unwrap().dv_integral;
    assert_eq!(
        dv_a.to_bits(),
        dv_b.to_bits(),
        "ΔV history diverged: {dv_a} vs {dv_b}"
    );
}
