//! Zero-allocation guard for the SCF hot paths (`--features alloc-count`).
//!
//! Installs the counting global allocator and proves that, after one
//! warm-up pass has populated every workspace and pool, a steady-state
//! all-band CG step (`cg_residual` + `cg_step`) and a steady-state GENPOT
//! Poisson solve (`HartreeSolver::solve_into`) perform **zero** heap
//! allocations. The system deliberately uses a 12³ grid so every FFT line
//! runs the Bluestein kernel — the one with the largest scratch demand —
//! and carries an active Kleinman–Bylander projector so the nonlocal
//! accumulation is exercised too.
//!
//! Everything lives in one `#[test]` so no concurrent test can perturb the
//! process-wide allocation counter between the bracketing reads.
#![cfg(feature = "alloc-count")]

use ls3df::alloc_count::{allocation_count, CountingAllocator};
use ls3df::grid::{Grid3, RealField};
use ls3df::math::KernelPolicy;
use ls3df::math::{c64, vec_ops, Matrix};
use ls3df::pseudo::LocalPotential;
use ls3df::pw::{
    cg_init, cg_residual, cg_step, effective_potential, initial_density, ionic_potential,
    CgWorkspace, Hamiltonian, HartreeSolver, NonlocalPotential, PwAtom, PwBasis,
};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const N_BANDS: usize = 4;

fn test_system() -> (PwBasis, Vec<PwAtom>) {
    // 12 = 2²·3: non-power-of-two on purpose, so all three FFT passes go
    // through Bluestein and its workspace scratch.
    let grid = Grid3::cubic(12, 6.0);
    let basis = PwBasis::new(grid, 2.0);
    let atoms = vec![
        PwAtom {
            pos: [1.5, 1.5, 1.5],
            local: LocalPotential {
                z: 4.0,
                rc: 1.0,
                a: 2.0,
                w: 0.9,
            },
            kb_rb: 1.0,
            kb_energy: 0.8,
        },
        PwAtom {
            pos: [4.5, 4.5, 4.5],
            local: LocalPotential {
                z: 2.0,
                rc: 1.2,
                a: 1.0,
                w: 1.0,
            },
            kb_rb: 1.0,
            kb_energy: 0.0,
        },
    ];
    (basis, atoms)
}

/// Deterministic pseudo-random normalized band block (no `rand`, so the
/// setup is reproducible and self-contained).
fn seed_bands(npw: usize) -> Matrix<c64> {
    let mut psi = Matrix::zeros(N_BANDS, npw);
    let mut state = 0x2545f491_4f6c_dd1du64;
    for b in 0..N_BANDS {
        let row = psi.row_mut(b);
        for v in row.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let re = ((state >> 11) as f64) / ((1u64 << 53) as f64) - 0.5;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let im = ((state >> 11) as f64) / ((1u64 << 53) as f64) - 0.5;
            *v = c64::new(re, im);
        }
        let inv = 1.0 / vec_ops::nrm2(psi.row(b)).max(1e-300);
        for v in psi.row_mut(b).iter_mut() {
            *v = v.scale(inv);
        }
    }
    psi
}

#[test]
fn steady_state_hot_paths_do_not_allocate() {
    let (basis, atoms) = test_system();
    let positions: Vec<[f64; 3]> = atoms.iter().map(|a| a.pos).collect();
    let e_kb: Vec<f64> = atoms.iter().map(|a| a.kb_energy).collect();
    let nl = NonlocalPotential::new(
        &basis,
        &positions,
        |a, q| {
            let rb = atoms[a].kb_rb;
            (-0.5 * q * q * rb * rb).exp()
        },
        &e_kb,
    );
    assert_eq!(nl.len(), 1, "one active projector expected");
    let v_ion = ionic_potential(&basis, &atoms);
    let rho = initial_density(&basis, &atoms, 1.2);
    let (v_eff, _) = effective_potential(&basis, &v_ion, &rho);
    let h = Hamiltonian::new(&basis, v_eff, &nl);

    // --- steady-state CG step -------------------------------------------
    let mut psi = seed_bands(basis.len());
    let mut ws = CgWorkspace::new(&h, N_BANDS);
    cg_init(&h, &psi, &mut ws);
    // Two warm-up rounds: the first cg_step has no previous direction; the
    // second runs the full β-combination path, i.e. true steady state.
    for _ in 0..2 {
        let _ = cg_residual(&psi, &mut ws);
        cg_step(&h, &mut psi, &mut ws, false);
    }
    // Sanity: the counting allocator really is installed — setup above
    // (workspaces, fields, plans) must have allocated plenty.
    assert!(
        allocation_count() > 100,
        "counting allocator not installed?"
    );
    let before = allocation_count();
    let resid = cg_residual(&psi, &mut ws);
    cg_step(&h, &mut psi, &mut ws, false);
    let cg_allocs = allocation_count() - before;
    assert!(resid.is_finite());
    assert_eq!(
        cg_allocs, 0,
        "steady-state cg_residual+cg_step allocated {cg_allocs} times"
    );

    // --- steady-state GENPOT (FFT Poisson) solve ------------------------
    // Both kernel policies must hold the zero-alloc contract: the fast
    // path (12 is even → packed r2c forward + c2r inverse through the
    // Fft3rWorkspace in the pooled scratch) and the reference path (the
    // complex Fft3 round trip). Explicit policies so the guard does not
    // depend on the ambient LS3DF_KERNELS setting.
    for policy in [KernelPolicy::Fast, KernelPolicy::Reference] {
        let hartree = HartreeSolver::new_with(basis.grid().clone(), policy);
        let mut v_h = RealField::zeros(basis.grid().clone());
        // Warm-up populates the solver's scratch pool.
        hartree.solve_into(&rho, &mut v_h);
        let before = allocation_count();
        hartree.solve_into(&rho, &mut v_h);
        let hartree_allocs = allocation_count() - before;
        assert_eq!(
            hartree_allocs, 0,
            "steady-state HartreeSolver::solve_into ({policy:?}) allocated \
             {hartree_allocs} times"
        );
        assert!(v_h.as_slice().iter().all(|v| v.is_finite()));
    }
}
