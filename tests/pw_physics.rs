//! Physics invariants of the planewave solver, tested across crates.

use ls3df_grid::{Grid3, RealField};
use ls3df_pseudo::LocalPotential;
use ls3df_pw::{
    solve_all_band, DftSystem, Hamiltonian, NonlocalPotential, PwAtom, PwBasis, ScfOptions,
    SolverOptions,
};

fn well_atom(pos: [f64; 3], z: f64) -> PwAtom {
    PwAtom {
        pos,
        local: LocalPotential {
            z,
            rc: 0.9,
            a: 0.0,
            w: 1.0,
        },
        kb_rb: 1.0,
        kb_energy: 0.0,
    }
}

#[test]
fn gauge_shift_moves_all_eigenvalues_equally() {
    // H[V + c] = H[V] + c: every eigenvalue shifts by exactly c.
    let grid = Grid3::cubic(10, 8.0);
    let basis = PwBasis::new(grid.clone(), 1.2);
    let v = RealField::from_fn(grid, |r| -0.6 * (-(r[0] - 4.0).powi(2) / 5.0).exp());
    let nl = NonlocalPotential::none(&basis);
    let opts = SolverOptions {
        max_iter: 150,
        tol: 1e-8,
        ..Default::default()
    };

    let h1 = Hamiltonian::new(&basis, v.clone(), &nl);
    let mut psi1 = ls3df_pw::scf::random_start(4, &basis, 1);
    let e1 = solve_all_band(&h1, &mut psi1, &opts);

    let c = 0.731;
    let mut v2 = v;
    v2.shift(c);
    let h2 = Hamiltonian::new(&basis, v2, &nl);
    let mut psi2 = ls3df_pw::scf::random_start(4, &basis, 2);
    let e2 = solve_all_band(&h2, &mut psi2, &opts);

    for b in 0..4 {
        assert!(
            (e2.eigenvalues[b] - e1.eigenvalues[b] - c).abs() < 1e-5,
            "band {b}: {} vs {} + {c}",
            e2.eigenvalues[b],
            e1.eigenvalues[b]
        );
    }
}

#[test]
fn translation_invariance_of_scf_energy() {
    // Rigidly translating all atoms (periodic cell) must leave the SCF
    // total energy unchanged.
    let lengths = [7.0, 7.0, 7.0];
    let grid = Grid3::new([12, 12, 12], lengths);
    let mk = |shift: f64| DftSystem {
        grid: grid.clone(),
        ecut: 1.4,
        atoms: vec![
            well_atom([1.0 + shift, 2.0, 3.0], 2.0),
            well_atom([4.5 + shift, 5.0, 1.5], 2.0),
        ],
    };
    let opts = ScfOptions {
        max_scf: 60,
        tol: 1e-4,
        n_extra_bands: 2,
        ..Default::default()
    };
    let e0 = ls3df_pw::scf(&mk(0.0), &opts);
    // Shift by a non-grid-commensurate amount to exercise the q-space
    // structure factors properly.
    let e1 = ls3df_pw::scf(&mk(1.99), &opts);
    assert!(e0.converged && e1.converged);
    assert!(
        (e0.total_energy - e1.total_energy).abs() < 2e-3,
        "E(0) = {} vs E(shift) = {}",
        e0.total_energy,
        e1.total_energy
    );
}

#[test]
fn two_isolated_atoms_have_twice_the_energy_of_one() {
    // Supercell consistency: doubling the cell with the SAME atomic
    // lattice (atom spacing 7 Bohr in every direction in both setups)
    // must reproduce the per-atom energy. At Γ-only sampling the doubled
    // cell effectively adds a k-point, so agreement is limited by
    // Brillouin-zone sampling (tens of meV at this scale), not by the
    // solver.
    let opts = ScfOptions {
        max_scf: 70,
        tol: 1e-4,
        n_extra_bands: 2,
        ..Default::default()
    };
    let one = DftSystem {
        grid: Grid3::new([10, 10, 10], [7.0, 7.0, 7.0]),
        ecut: 1.2,
        atoms: vec![well_atom([3.5, 3.5, 3.5], 2.0)],
    };
    let two = DftSystem {
        grid: Grid3::new([20, 10, 10], [14.0, 7.0, 7.0]),
        ecut: 1.2,
        atoms: vec![
            well_atom([3.5, 3.5, 3.5], 2.0),
            well_atom([10.5, 3.5, 3.5], 2.0),
        ],
    };
    let r1 = ls3df_pw::scf(&one, &opts);
    let r2 = ls3df_pw::scf(&two, &opts);
    assert!(r1.converged && r2.converged);
    let per_atom_1 = r1.total_energy;
    let per_atom_2 = r2.total_energy / 2.0;
    assert!(
        (per_atom_1 - per_atom_2).abs() < 0.05,
        "1-atom {per_atom_1} vs 2-atom/2 {per_atom_2}"
    );
}

#[test]
fn density_respects_crystal_symmetry() {
    // A single centred CLOSED-SHELL atom (z = 2: one doubly-occupied 1s
    // level — no degenerate partially-filled shell to break symmetry) in
    // a cubic cell → density symmetric under x ↔ y reflection.
    let grid = Grid3::cubic(12, 8.0);
    let sys = DftSystem {
        grid: grid.clone(),
        ecut: 1.4,
        atoms: vec![well_atom([4.0, 4.0, 4.0], 2.0)],
    };
    let res = ls3df_pw::scf(
        &sys,
        &ScfOptions {
            max_scf: 60,
            tol: 1e-4,
            n_extra_bands: 3,
            ..Default::default()
        },
    );
    // Symmetry holds at every SCF iterate (the initial guess is symmetric
    // and every step preserves it), so convergence is not required — but
    // the loop must at least be making progress.
    let first = res.history.first().unwrap().dv_integral;
    let last = res.history.last().unwrap().dv_integral;
    assert!(last < first, "SCF not progressing: {first} → {last}");
    for iz in 0..12 {
        for iy in 0..12 {
            for ix in 0..12 {
                let a = res.rho.at(ix, iy, iz);
                let b = res.rho.at(iy, ix, iz);
                let scale = res.rho.max();
                assert!(
                    (a - b).abs() < 1e-4 * scale,
                    "x↔y symmetry broken at ({ix},{iy},{iz}): {a} vs {b}"
                );
            }
        }
    }
}
