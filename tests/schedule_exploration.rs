//! Schedule-exploration gate (driven by `cargo xtask schedules`): the
//! determinism contract must hold not just across thread *counts*
//! (`tests/ls3df_pipeline.rs`) but across work-selection *orders*. The
//! adversarial schedules in the rayon shim (`lifo-starve`, `all-steal`,
//! `reverse-park`) force steal patterns the default policy never
//! generates; a short SCF run under every one of them — plus the
//! sequential fallback — must produce bit-identical densities and
//! convergence histories, and a panic inside a parallel closure must
//! still surface in the caller. The global pool latches its schedule at
//! creation, so each explored order runs in a fresh subprocess (this
//! test binary re-execed with `LS3DF_SCHEDULE` pinned).

use ls3df::core::{Ls3df, Ls3dfOptions, Passivation};
use ls3df::pw::Mixer;
use ls3df_atoms::{Atom, Species, Structure};
use ls3df_pseudo::PseudoTable;
use rayon::Schedule;

/// Same deep-well model crystal as the pipeline tests: gapped, cheap,
/// chemistry-free.
fn model_crystal(m: [usize; 3], a: f64) -> Structure {
    let mut atoms = Vec::new();
    for k in 0..m[2] {
        for j in 0..m[1] {
            for i in 0..m[0] {
                atoms.push(Atom {
                    species: Species::Zn,
                    pos: [
                        (i as f64 + 0.5) * a,
                        (j as f64 + 0.5) * a,
                        (k as f64 + 0.5) * a,
                    ],
                });
            }
        }
    }
    Structure::new([m[0] as f64 * a, m[1] as f64 * a, m[2] as f64 * a], atoms)
}

fn short_scf() -> ls3df::core::Ls3dfResult {
    let s = model_crystal([2, 2, 2], 6.5);
    let opts = Ls3dfOptions {
        ecut: 1.5,
        piece_pts: [8, 8, 8],
        buffer_pts: [3, 3, 3],
        passivation: Passivation::WallOnly,
        wall_height: 1.5,
        n_extra_bands: 2,
        cg_steps: 6,
        initial_cg_steps: 10,
        fragment_tol: 1e-9,
        mixer: Mixer::Kerker {
            alpha: 0.6,
            q0: 0.8,
        },
        max_scf: 2,
        tol: 1e-4,
        pseudo: PseudoTable::deep_well(2.0, 0.8),
        ..Default::default()
    };
    let mut calc = Ls3df::builder(&s)
        .fragments([2, 2, 2])
        .options(opts)
        .build()
        .expect("valid test geometry");
    calc.scf()
}

/// FNV-1a over the raw f64 bit patterns of the physically meaningful
/// outputs — any single-bit divergence changes it.
fn run_digest(res: &ls3df::core::Ls3dfResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bits: u64| {
        for byte in bits.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &x in res.rho.as_slice() {
        eat(x.to_bits());
    }
    for step in &res.history {
        eat(step.dv_integral.to_bits());
        eat(step.worst_residual.to_bits());
    }
    h
}

/// Child half of the digest matrix: inert under a plain `cargo test`;
/// runs a short SCF and prints its digest when the parent re-execs this
/// binary with `LS3DF_SCHEDULE_CHILD=1` (and `LS3DF_SCHEDULE` /
/// `LS3DF_THREADS` pinned to the explored point).
#[test]
fn schedule_child() {
    if std::env::var("LS3DF_SCHEDULE_CHILD").is_err() {
        return;
    }
    let res = short_scf();
    println!("LS3DF_DIGEST={:016x}", run_digest(&res));
}

/// Child half of the panic-propagation check: panics inside a parallel
/// closure on the global pool (configured by the parent's env) and
/// prints a marker if — and only if — the panic surfaced in the caller.
#[test]
fn schedule_panic_child() {
    if std::env::var("LS3DF_SCHEDULE_PANIC_CHILD").is_err() {
        return;
    }
    use rayon::prelude::*;
    let caught = std::panic::catch_unwind(|| {
        (0..256u32).into_par_iter().for_each(|i| {
            if i == 171 {
                panic!("scheduled boom");
            }
        });
    });
    if caught.is_err() {
        println!("LS3DF_PANIC_CAUGHT=1");
    }
}

fn spawn_child(test_name: &str, envs: &[(&str, &str)]) -> String {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = std::process::Command::new(&exe);
    cmd.args(["--exact", test_name, "--nocapture"]);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn schedule child");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        out.status.success(),
        "child {test_name} under {envs:?} failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    stdout
}

/// The digest matrix: sequential fallback + every schedule at 4 threads
/// must agree to the last bit.
#[test]
fn densities_bit_identical_across_schedules() {
    let mut digests = Vec::new();

    let stdout = spawn_child(
        "schedule_child",
        &[("LS3DF_SCHEDULE_CHILD", "1"), ("LS3DF_THREADS", "1")],
    );
    digests.push(("sequential".to_string(), extract_digest(&stdout)));

    for schedule in Schedule::ALL {
        let stdout = spawn_child(
            "schedule_child",
            &[
                ("LS3DF_SCHEDULE_CHILD", "1"),
                ("LS3DF_THREADS", "4"),
                ("LS3DF_SCHEDULE", schedule.name()),
            ],
        );
        digests.push((schedule.name().to_string(), extract_digest(&stdout)));
    }

    let (_, reference) = &digests[0];
    for (point, digest) in &digests {
        assert_eq!(
            digest, reference,
            "schedule `{point}` diverged from the sequential run: \
             {digest} vs {reference}"
        );
    }
}

/// Panic propagation survives every adversarial order: a panic in a
/// parallel closure must reach the calling thread (and be catchable
/// there), never vanish into a worker.
#[test]
fn panics_propagate_under_every_schedule() {
    for schedule in Schedule::ALL {
        let stdout = spawn_child(
            "schedule_panic_child",
            &[
                ("LS3DF_SCHEDULE_PANIC_CHILD", "1"),
                ("LS3DF_THREADS", "4"),
                ("LS3DF_SCHEDULE", schedule.name()),
            ],
        );
        assert!(
            stdout.contains("LS3DF_PANIC_CAUGHT=1"),
            "panic did not propagate to the caller under `{}`:\n{stdout}",
            schedule.name()
        );
    }
}

fn extract_digest(stdout: &str) -> String {
    stdout
        .lines()
        .find_map(|l| l.split("LS3DF_DIGEST=").nth(1))
        .map(str::trim)
        .unwrap_or_else(|| panic!("no digest line from child:\n{stdout}"))
        .to_string()
}
