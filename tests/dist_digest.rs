//! Cross-process bit-identity gate for the two-level distributed
//! execution (`LS3DF_GROUPS`): the patched SCF density must be
//! **bit-identical** at any processor-group count, at any thread count —
//! the distributed loop merges workers' bit-exact region densities and
//! replays the single-process fragment-order patch, so group count is
//! pure partitioning, never physics.
//!
//! [`GOLDEN`] is the same pre-refactor digest `tests/scheme_digest.rs`
//! pins (identical workload, identical digest function, identical
//! `LS3DF_KERNELS=reference` policy), so a single-process run, a
//! 2-group run, and a 4-group run must all land on the exact digest the
//! repo has carried since the scheme refactor. The options fingerprint
//! is asserted equal across group counts too — snapshots stay
//! exchangeable at any `LS3DF_GROUPS`.
//!
//! The child half is SPMD: the parent re-execs this test binary with
//! `LS3DF_GROUPS` set; the child's `build()` spawns its workers, which
//! re-exec the same binary again (`LS3DF_DIST_RANK` routes them into the
//! worker bootstrap inside the same `#[test]` function).

use ls3df::core::{Ls3df, Ls3dfOptions, Passivation};
use ls3df::pw::Mixer;
use ls3df_atoms::{Atom, Species, Structure};
use ls3df_pseudo::PseudoTable;

/// The pre-refactor SCF digest (see `tests/scheme_digest.rs::GOLDEN` —
/// same capture, same workload, same reference-kernel policy).
const GOLDEN: u64 = 0xb56c_8071_4d82_04e2;

/// Same deep-well model crystal as `tests/scheme_digest.rs`.
fn model_crystal(m: [usize; 3], a: f64) -> Structure {
    let mut atoms = Vec::new();
    for k in 0..m[2] {
        for j in 0..m[1] {
            for i in 0..m[0] {
                atoms.push(Atom {
                    species: Species::Zn,
                    pos: [
                        (i as f64 + 0.5) * a,
                        (j as f64 + 0.5) * a,
                        (k as f64 + 0.5) * a,
                    ],
                });
            }
        }
    }
    Structure::new([m[0] as f64 * a, m[1] as f64 * a, m[2] as f64 * a], atoms)
}

/// Same options as `tests/scheme_digest.rs::reference_opts`.
fn reference_opts() -> Ls3dfOptions {
    Ls3dfOptions {
        ecut: 1.5,
        piece_pts: [8, 8, 8],
        buffer_pts: [3, 3, 3],
        passivation: Passivation::WallOnly,
        wall_height: 1.5,
        n_extra_bands: 2,
        cg_steps: 6,
        initial_cg_steps: 10,
        fragment_tol: 1e-9,
        mixer: Mixer::Kerker {
            alpha: 0.6,
            q0: 0.8,
        },
        max_scf: 2,
        tol: 1e-4,
        pseudo: PseudoTable::deep_well(2.0, 0.8),
        ..Default::default()
    }
}

/// FNV-1a over every rho bit pattern + per-step convergence scalars
/// (identical to `tests/scheme_digest.rs::run_digest`).
fn run_digest(res: &ls3df::core::Ls3dfResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bits: u64| {
        for byte in bits.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &x in res.rho.as_slice() {
        eat(x.to_bits());
    }
    for step in &res.history {
        eat(step.dv_integral.to_bits());
        eat(step.worst_residual.to_bits());
    }
    h
}

/// Child half: inert under a plain `cargo test`; re-execed with
/// `LS3DF_DIST_DIGEST_CHILD=1` (and `LS3DF_GROUPS`) it runs the reference
/// workload over the processor-group communicator. Every rank — launcher
/// and spawned workers alike — runs this same function (SPMD); only the
/// launcher's stdout reaches the parent (workers are spawned with their
/// stdout nulled), so the digest line is rank 0's by construction.
#[test]
fn dist_digest_child() {
    if std::env::var("LS3DF_DIST_DIGEST_CHILD").is_err() {
        return;
    }
    let s = model_crystal([2, 2, 2], 6.5);
    let mut calc = Ls3df::builder(&s)
        .fragments([2, 2, 2])
        .options(reference_opts())
        .build()
        .expect("valid reference geometry");
    let fingerprint = calc.fingerprint();
    let res = calc.try_scf().expect("distributed SCF must complete");
    println!("LS3DF_DIGEST={:016x}", run_digest(&res));
    println!("LS3DF_FPRINT={fingerprint:016x}");
    println!("LS3DF_GROUP_SECONDS={}", res.group_petot_seconds.len());
}

fn child_run(groups: &str, threads: &str) -> (String, String, usize) {
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(&exe)
        .args(["--exact", "dist_digest_child", "--nocapture"])
        .env("LS3DF_DIST_DIGEST_CHILD", "1")
        .env("LS3DF_GROUPS", groups)
        .env("LS3DF_THREADS", threads)
        .env("LS3DF_KERNELS", "reference")
        .output()
        .expect("spawn dist_digest_child");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        out.status.success(),
        "child (LS3DF_GROUPS={groups}, LS3DF_THREADS={threads}) failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let grab = |key: &str| {
        stdout
            .lines()
            .find_map(|l| l.split(key).nth(1))
            .map(str::trim)
            .unwrap_or_else(|| {
                panic!("no {key} line from child (groups={groups}, threads={threads}):\n{stdout}")
            })
            .to_string()
    };
    let digest = grab("LS3DF_DIGEST=");
    let fprint = grab("LS3DF_FPRINT=");
    let n_groups: usize = grab("LS3DF_GROUP_SECONDS=").parse().expect("group count");
    (digest, fprint, n_groups)
}

/// The acceptance gate: densities bit-identical across
/// `LS3DF_GROUPS ∈ {1, 2, 4}` × `LS3DF_THREADS ∈ {1, host parallelism}`,
/// all equal to the pinned single-process golden digest, with one
/// options fingerprint across every world size.
#[test]
fn density_bit_identical_across_group_counts() {
    let golden = format!("{GOLDEN:016x}");
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .to_string();
    let mut fingerprints = Vec::new();
    for groups in ["1", "2", "4"] {
        for threads in ["1", max.as_str()] {
            let (digest, fprint, n_groups) = child_run(groups, threads);
            assert_eq!(
                digest, golden,
                "density diverged from the single-process golden at \
                 LS3DF_GROUPS={groups}, LS3DF_THREADS={threads}"
            );
            assert_eq!(
                n_groups.to_string(),
                groups,
                "result carried per-group timings for the wrong world size"
            );
            fingerprints.push(fprint);
        }
    }
    assert!(
        fingerprints.windows(2).all(|w| w[0] == w[1]),
        "options fingerprint must be group-count-independent: {fingerprints:?}"
    );
}
