//! Per-kernel tolerance contract between `KernelPolicy::Fast` and
//! `KernelPolicy::Reference` (see DESIGN.md "Kernel architecture").
//!
//! PR policy: the *reference* path is pinned bit-for-bit by the golden
//! digests (`tests/scheme_digest.rs` children run with
//! `LS3DF_KERNELS=reference`); the *fast* path (r2c/c2r packing, radix-4
//! butterflies, lane-split dots, the packed GEMM microkernel) is allowed
//! to re-round, and THIS file is the contract that says by how much.
//! Every bound below is a pinned constant — loosening one is a reviewed
//! decision, not a test tweak. The bounds are deliberately ~100× above
//! observed worst cases so they fail on algorithmic regressions (a wrong
//! twiddle, a dropped Nyquist bin), not on benign rounding differences
//! between build environments.
//!
//! Runs under both `LS3DF_THREADS` regimes in CI (`cargo xtask ci`,
//! `kernel-tol` steps): the fast kernels must meet the same bounds at any
//! thread count, which they do trivially because their arithmetic is
//! schedule-independent by construction.

use ls3df::fft::{Fft1d, Fft3, Fft3r, RealFft1d};
use ls3df::grid::{Grid3, RealField};
use ls3df::math::{c64, gemm, vec_ops, KernelPolicy, Matrix, Op};
use ls3df::pseudo::KbProjector;
use ls3df::pw::{ionic_potential_with, HartreeSolver, Mixer, MixerState, PwAtom, PwBasis};
use ls3df_pseudo::LocalPotential;

/// Complex 1-D transforms, radix-4/split (fast) vs radix-2 (reference),
/// per-bin, relative to the spectrum peak.
const FFT1D_TOL: f64 = 1e-12;
/// Packed r2c spectrum vs the complex transform of the same real signal.
const R2C_TOL: f64 = 1e-12;
/// 3-D packed transform + inverse vs the complex 3-D path, per sample.
const FFT3R_TOL: f64 = 1e-11;
/// Hartree potential, packed Poisson solve vs complex reference.
const HARTREE_TOL: f64 = 1e-10;
/// Kerker-mixed potential, packed filter vs complex reference.
const KERKER_TOL: f64 = 1e-11;
/// Ionic potential, packed half-spectrum synthesis vs complex sweep.
const SYNTH_TOL: f64 = 1e-10;
/// GEMM microkernel vs blocked scalar kernel, per element, scaled by k.
const GEMM_TOL: f64 = 1e-14;
/// Lane-split dot products vs sequential, scaled by length.
const DOTC_TOL: f64 = 1e-15;

fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed | 1;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
    }
}

#[test]
fn radix4_matches_radix2_every_pow2() {
    // Every power of two ≤ 1024: below 1024 covers both the even-level
    // (pure radix-4) and odd-level (radix-4 + one radix-2 stage) shapes.
    let mut n = 2;
    while n <= 1024 {
        let mut next = lcg(0xA11CE ^ n as u64);
        let x: Vec<c64> = (0..n).map(|_| c64::new(next(), next())).collect();
        let fast = Fft1d::new_with(n, KernelPolicy::Fast);
        let reference = Fft1d::new_with(n, KernelPolicy::Reference);
        for dir in [true, false] {
            let mut a = x.clone();
            let mut b = x.clone();
            if dir {
                fast.forward(&mut a);
                reference.forward(&mut b);
            } else {
                fast.inverse(&mut a);
                reference.inverse(&mut b);
            }
            let peak = b.iter().map(|v| v.abs()).fold(1.0, f64::max);
            for (i, (u, v)) in a.iter().zip(&b).enumerate() {
                let d = (*u - *v).abs();
                assert!(
                    d <= FFT1D_TOL * peak,
                    "n={n} bin {i} dir={dir}: |Δ|={d:e} > {FFT1D_TOL:e}·{peak:e}"
                );
            }
        }
        n *= 2;
    }
}

#[test]
fn r2c_matches_complex_transform() {
    for n in [2usize, 6, 8, 16, 40, 54, 64, 100, 128] {
        let mut next = lcg(0xBEEF ^ n as u64);
        let x: Vec<f64> = (0..n).map(|_| next()).collect();
        let rplan = RealFft1d::new_with(n, KernelPolicy::Fast);
        let mut ws = rplan.workspace();
        let mut packed = vec![c64::ZERO; rplan.packed_len()];
        rplan.forward(&x, &mut packed, &mut ws);
        let mut full: Vec<c64> = x.iter().map(|&v| c64::new(v, 0.0)).collect();
        Fft1d::new_with(n, KernelPolicy::Reference).forward(&mut full);
        let peak = full.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (k, (p, f)) in packed.iter().zip(&full).enumerate() {
            let d = (*p - *f).abs();
            assert!(
                d <= R2C_TOL * peak,
                "n={n} bin {k}: packed vs complex |Δ|={d:e}"
            );
        }
    }
}

#[test]
fn packed_3d_roundtrip_matches_complex() {
    for dims in [[12, 12, 12], [16, 8, 8], [10, 9, 8]] {
        let len = dims[0] * dims[1] * dims[2];
        let mut next = lcg(0xD1CE ^ len as u64);
        let x: Vec<f64> = (0..len).map(|_| next()).collect();

        let rfft = Fft3r::new_with(dims, KernelPolicy::Fast);
        let mut ws = rfft.workspace();
        let mut spec = vec![c64::ZERO; rfft.packed_len()];
        rfft.forward(&x, &mut spec, &mut ws);
        let mut back = vec![0.0_f64; len];
        rfft.inverse(&mut spec, &mut back, &mut ws);

        let cplan = Fft3::new(dims[0], dims[1], dims[2]);
        let mut cws = cplan.workspace();
        let mut full: Vec<c64> = x.iter().map(|&v| c64::new(v, 0.0)).collect();
        cplan.forward_with(&mut full, &mut cws);
        cplan.inverse_with(&mut full, &mut cws);

        let peak = x.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
        for i in 0..len {
            let d = (back[i] - full[i].re).abs();
            assert!(
                d <= FFT3R_TOL * peak,
                "dims {dims:?} sample {i}: |Δ|={d:e} > {FFT3R_TOL:e}"
            );
        }
    }
}

fn test_field(grid: &Grid3) -> RealField {
    RealField::from_fn(grid.clone(), |r| {
        (r[0] * 0.7).sin() + (r[1] - 3.0).cos() * (r[2] * 0.3).sin() + 0.2
    })
}

#[test]
fn hartree_fast_within_tolerance() {
    for dims in [[16, 8, 8], [9, 8, 10]] {
        let grid = Grid3::new(dims, [8.0, 7.0, 9.0]);
        let rho = test_field(&grid);
        let mut fast = RealField::zeros(grid.clone());
        let mut reference = RealField::zeros(grid.clone());
        HartreeSolver::new_with(grid.clone(), KernelPolicy::Fast).solve_into(&rho, &mut fast);
        HartreeSolver::new_with(grid.clone(), KernelPolicy::Reference)
            .solve_into(&rho, &mut reference);
        let d = fast.diff(&reference).max_abs();
        let scale = reference.max_abs().max(1.0);
        assert!(
            d <= HARTREE_TOL * scale,
            "dims {dims:?}: hartree fast vs reference |Δ|={d:e}"
        );
    }
}

#[test]
fn kerker_fast_within_tolerance() {
    let dims = [12, 10, 8];
    let grid = Grid3::new(dims, [6.0, 5.0, 4.0]);
    let fft = Fft3::new(dims[0], dims[1], dims[2]);
    let v_in = test_field(&grid);
    let mut v_out = test_field(&grid);
    v_out.add_scaled(0.3, &v_in);
    let scheme = Mixer::Kerker {
        alpha: 0.6,
        q0: 0.8,
    };
    // Mix twice so the cached-factor path is exercised too.
    let mut fast_state = MixerState::new_with(scheme.clone(), KernelPolicy::Fast);
    let mut ref_state = MixerState::new_with(scheme, KernelPolicy::Reference);
    for _ in 0..2 {
        let fast = fast_state.mix(&v_in, &v_out, &fft);
        let reference = ref_state.mix(&v_in, &v_out, &fft);
        let d = fast.diff(&reference).max_abs();
        let scale = reference.max_abs().max(1.0);
        assert!(
            d <= KERKER_TOL * scale,
            "kerker fast vs reference |Δ|={d:e}"
        );
    }
}

#[test]
fn ionic_synthesis_fast_within_tolerance() {
    let atoms = vec![
        PwAtom {
            pos: [2.0, 2.0, 2.0],
            local: LocalPotential {
                z: 4.0,
                rc: 1.0,
                a: 2.0,
                w: 0.9,
            },
            kb_rb: 1.0,
            kb_energy: 0.0,
        },
        PwAtom {
            pos: [5.5, 6.0, 1.5],
            local: LocalPotential {
                z: 2.0,
                rc: 1.2,
                a: 1.0,
                w: 1.0,
            },
            kb_rb: 1.0,
            kb_energy: 0.0,
        },
    ];
    for grid in [
        Grid3::cubic(12, 8.0),
        Grid3::new([10, 12, 9], [8.0, 8.0, 8.0]),
    ] {
        let basis = PwBasis::new(grid, 1.5);
        let fast = ionic_potential_with(&basis, &atoms, KernelPolicy::Fast);
        let reference = ionic_potential_with(&basis, &atoms, KernelPolicy::Reference);
        let d = fast.diff(&reference).max_abs();
        let scale = reference.max_abs().max(1.0);
        assert!(
            d <= SYNTH_TOL * scale,
            "ionic synthesis fast vs reference |Δ|={d:e}"
        );
    }
}

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<c64> {
    let mut next = lcg(seed);
    Matrix::from_fn(rows, cols, |_, _| c64::new(next(), next()))
}

#[test]
fn gemm_microkernel_within_tolerance() {
    // Big enough for the microkernel dispatch (m·k·n ≥ 2¹⁸), ragged so
    // edge panels and the partial bottom strip are covered.
    for &(m, k, n) in &[(32, 300, 32), (37, 280, 29)] {
        let a = rand_matrix(m, k, 11 + m as u64);
        let b = rand_matrix(k, n, 22 + n as u64);
        let c0 = rand_matrix(m, n, 33);
        let alpha = c64::new(0.8, -0.2);
        let beta = c64::new(-0.5, 0.1);
        let mut fast = c0.clone();
        let mut reference = c0.clone();
        gemm::gemm_with(
            KernelPolicy::Fast,
            alpha,
            &a,
            Op::None,
            &b,
            Op::None,
            beta,
            &mut fast,
        );
        gemm::gemm_with(
            KernelPolicy::Reference,
            alpha,
            &a,
            Op::None,
            &b,
            Op::None,
            beta,
            &mut reference,
        );
        let tol = GEMM_TOL * k as f64;
        for i in 0..m {
            for j in 0..n {
                let d = (fast[(i, j)] - reference[(i, j)]).abs();
                let scale = reference[(i, j)].abs().max(1.0);
                assert!(
                    d <= tol * scale,
                    "({i},{j}) of {m}x{k}x{n}: |Δ|={d:e} > {tol:e}"
                );
            }
        }
    }
}

#[test]
fn lane_split_dots_within_tolerance() {
    for len in [5usize, 64, 1001, 4096] {
        let mut next = lcg(0xD07 ^ len as u64);
        let x: Vec<c64> = (0..len).map(|_| c64::new(next(), next())).collect();
        let y: Vec<c64> = (0..len).map(|_| c64::new(next(), next())).collect();
        let fast = vec_ops::dotc_with(KernelPolicy::Fast, &x, &y);
        let reference = vec_ops::dotc_with(KernelPolicy::Reference, &x, &y);
        let d = (fast - reference).abs();
        let tol = DOTC_TOL * len as f64 * reference.abs().max(1.0);
        assert!(d <= tol, "len {len}: dotc fast vs reference |Δ|={d:e}");
    }
}

#[test]
fn projector_batch_is_bit_identical() {
    // The batched projector form factor is a hoist, not a re-rounding:
    // it must agree with the scalar path bit-for-bit (no tolerance).
    let p = KbProjector { rb: 1.1, e_kb: 1.5 };
    let mut next = lcg(0xF0F0);
    let qs: Vec<f64> = (0..512).map(|_| next().abs() * 12.0).collect();
    let mut out = vec![0.0; qs.len()];
    p.fourier_batch(&qs, &mut out);
    for (&q, &b) in qs.iter().zip(&out) {
        assert_eq!(p.fourier(q), b, "q = {q}");
    }
}
